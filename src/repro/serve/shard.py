"""Hash-partitioned candidate catalogs with scatter/gather top-k merge.

One catalog object cannot outgrow one process, so the pool splits the
candidate layer by ``record_id``: :func:`shard_of` maps every id to a
shard with a crc32 hash (salted python ``hash()`` would disagree across
processes), writes route to the owning shard only, and a query scatters
to every shard, takes each shard's local top-k, and merges the partial
rankings in the same deterministic ``(-score, record_id)`` order the
unsharded indexes use.

The merge is *exact*, not approximate: both underlying indexes rank by a
total order and a record's score depends only on the (query, record)
pair -- never on which other records share its shard -- so the global
top-k is always contained in the union of per-shard top-ks.  That is why
``tests/serve/test_shard.py`` can require bit-identical candidates
against the unsharded :class:`~repro.serve.index.ServingIndex` at shard
counts 1/2/4, including after add/remove/replace churn.

Dense parity holds to float32 reduction tolerance rather than bitwise:
the per-record int8 codes and scales are shard-independent, but
``repro.ann.kernels.fused_scaled_dot`` scores each probed block with one
BLAS gemv, and gemv accumulation order varies with the row count, so a
shard's scores can differ from the unsharded index's in the last ulp
(~1e-7).  Rankings still agree (the tests assert identical ranked ids
and approx-equal scores).

Two further caveats are inherited from the ANN layer: a *trained* IVF
shard fits its k-means quantizer on its own records, so its probe sets
(and therefore its recall, not its scoring) can differ from an unsharded
trained IVF index.  LSH shards share seeded hyperplanes, which makes
their probed row sets an exact partition of the unsharded buckets; the
parity tests use LSH and untrained (flat-scan) IVF.

Both sharded classes expose the full catalog protocol of their unsharded
counterparts (``add`` / ``add_many`` / ``remove`` / ``get`` /
``candidates`` / ``stats``), so a :class:`~repro.serve.server.MatchServer`
can use them directly -- the pool's serial fallback does exactly that --
while :class:`~repro.serve.pool.ServingPool` places whole shards inside
replica processes and runs the same scatter/gather over pipes.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..data.records import EntityRecord
from .index import ServingIndex


def shard_of(record_id: str, shards: int) -> int:
    """Owning shard of a record id: stable across processes and runs."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return zlib.crc32(record_id.encode("utf-8")) % shards


def merge_topk(partials: Iterable[Sequence[Tuple[EntityRecord, float]]],
               k: int) -> List[Tuple[EntityRecord, float]]:
    """Merge per-shard ``(record, score)`` rankings into one global top-k.

    Every partial list is already ordered by ``(-score, record_id)``; the
    merge re-sorts their union under the same total order, so the result
    is identical to ranking all shards' records in one index.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    merged = [entry for partial in partials for entry in partial]
    merged.sort(key=lambda entry: (-entry[1], entry[0].record_id))
    return merged[:k]


class ShardedServingIndex:
    """``shards`` x :class:`ServingIndex` behind the one-catalog protocol.

    Writes touch exactly one shard (one lock), queries scatter to all of
    them; per-record scoring is unchanged, so candidates are bit-identical
    to an unsharded index at any shard count.
    """

    def __init__(self, shards: int = 1, threshold: float = 0.0,
                 min_shared_tokens: int = 1, default_k: int = 5) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.default_k = default_k
        self.shards = [ServingIndex(threshold=threshold,
                                    min_shared_tokens=min_shared_tokens,
                                    default_k=default_k)
                       for _ in range(shards)]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, record_id: str) -> ServingIndex:
        return self.shards[shard_of(record_id, len(self.shards))]

    # -- catalog protocol ----------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self.shard_for(record_id)

    def get(self, record_id: str) -> Optional[EntityRecord]:
        return self.shard_for(record_id).get(record_id)

    def add(self, record: EntityRecord) -> bool:
        return self.shard_for(record.record_id).add(record)

    def add_many(self, records) -> int:
        return sum(1 for record in records if self.add(record))

    def remove(self, record_id: str) -> bool:
        return self.shard_for(record_id).remove(record_id)

    # -- scatter/gather -------------------------------------------------
    def candidates(self, record: EntityRecord,
                   k: Optional[int] = None
                   ) -> List[Tuple[EntityRecord, float]]:
        k = self.default_k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be >= 1")
        return merge_topk((shard.candidates(record, k)
                           for shard in self.shards), k)

    def stats(self) -> dict:
        per_shard = [shard.stats() for shard in self.shards]
        return {
            "shards": len(self.shards),
            "records": sum(s["records"] for s in per_shard),
            "tokens": sum(s["tokens"] for s in per_shard),
            "postings": sum(s["postings"] for s in per_shard),
            "per_shard": per_shard,
        }


class ShardedDenseCandidateIndex:
    """``shards`` x :class:`~repro.serve.dense.DenseCandidateIndex` over
    one shared encoder.

    The query is embedded **once** and the vector scattered, so sharding
    adds no per-shard encoder cost; each shard re-ranks only its own int8
    rows.  Per-vector quantization means a record's score never depends
    on its shard-mates, which keeps the merged ranking exact (see the
    module docstring for the trained-IVF probe caveat).
    """

    def __init__(self, encoder, shards: int = 1, kind: str = "ivf",
                 min_score: Optional[float] = None, default_k: int = 5,
                 seed: int = 0, **index_kwargs) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        from .dense import DenseCandidateIndex

        self.encoder = encoder
        self.default_k = default_k
        #: every shard shares the encoder (and its content-addressed
        #: cache) and the same seed, so LSH shards hash against identical
        #: hyperplanes -- their buckets partition the unsharded ones
        self.shards = [DenseCandidateIndex(encoder, kind=kind,
                                           min_score=min_score,
                                           default_k=default_k, seed=seed,
                                           **index_kwargs)
                       for _ in range(shards)]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, record_id: str):
        return self.shards[shard_of(record_id, len(self.shards))]

    # -- catalog protocol ----------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self.shard_for(record_id)

    def get(self, record_id: str) -> Optional[EntityRecord]:
        return self.shard_for(record_id).get(record_id)

    def add(self, record: EntityRecord) -> bool:
        return self.shard_for(record.record_id).add(record)

    def add_many(self, records) -> int:
        """Bulk insert: one cache-aware embedding sweep, then one routed
        vector-level insert per record."""
        records = list(records)
        if not records:
            return 0
        vectors = self.encoder.encode_records(records)
        fresh = 0
        for i, record in enumerate(records):
            shard = self.shard_for(record.record_id)
            if shard.add_vector(record, vectors[i]):
                fresh += 1
        return fresh

    def remove(self, record_id: str) -> bool:
        return self.shard_for(record_id).remove(record_id)

    def train(self) -> "ShardedDenseCandidateIndex":
        """(Re)train each trainable shard on its own records."""
        for shard in self.shards:
            shard.train()
        return self

    # -- scatter/gather -------------------------------------------------
    def candidates(self, record: EntityRecord,
                   k: Optional[int] = None
                   ) -> List[Tuple[EntityRecord, float]]:
        k = self.default_k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be >= 1")
        query = self.encoder.encode_record(record)
        return self.candidates_from_vector(query, k)

    def candidates_from_vector(self, query: np.ndarray, k: int
                               ) -> List[Tuple[EntityRecord, float]]:
        """Scatter an already-embedded query; the pool's router uses this
        so a match query is embedded once, not once per shard."""
        return merge_topk((shard.candidates_from_vector(query, k)
                           for shard in self.shards), k)

    def stats(self) -> dict:
        per_shard = [shard.stats() for shard in self.shards]
        return {
            "shards": len(self.shards),
            "records": sum(s["records"] for s in per_shard),
            "per_shard": per_shard,
        }
