"""TenantRegistry: hundreds of KB-scale deltas over one shared backbone.

The registry owns the multi-tenant side of serving:

* it **registers** tenant directories (each a
  :class:`~repro.serve.delta.DeltaBundle`) and hot-loads them on demand
  into materialized modules (a :class:`~repro.core.peft.SoftPrompt`,
  optionally per-layer :class:`~repro.core.peft.Adapter` pairs), keeping
  at most ``capacity`` tenants resident under LRU eviction (registered
  paths survive eviction; the delta reloads on next use -- it is KBs);
* it **binds** a tenant onto the shared backbone by mutation -- swapping
  the model's ``prompt_encoder`` and attaching/removing adapters between
  micro-batches.  The scheduler is single-threaded, so a bind is never
  observed mid-batch; ``bind(None)`` restores the pristine base model;
* it **pins** correctness: a delta records the sha1 fingerprint of the
  backbone it was tuned against and the registry refuses to bind it onto
  any other weights (a mismatched delta would be silently wrong);
* it **fuses** mixed-tenant micro-batches: soft-prompt tenants differ
  only in their ``(P, D)`` prompt matrix, so one batch can score rows of
  several tenants in a single fastpath call by stacking the per-tenant
  matrices into ``(T*P, D)`` and offsetting each row's gather indices by
  ``slot * P`` (see :meth:`fused_probs`).  Adapter tenants change the
  transformer stack itself and are never fused -- the server schedules
  them same-tenant-only.

Encodings are tenant-independent (the template/tokenizer is shared), so
the engine's content-addressed ``EncodingCache`` is shared across all
tenants; only class probabilities are tenant-specific.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..autograd import no_grad
from ..autograd.tensor import get_default_dtype
from ..core.peft import (
    ADAPTER_SLOTS, Adapter, SoftPrompt, attach_adapters, remove_adapters,
)
from ..infer.fastpath import prompt_forward_encoded
from ..obs import get_telemetry
from .bundle import BundleError, _MANIFEST_FILE
from .delta import DeltaBundle, backbone_fingerprint

PathLike = Union[str, Path]

_PROMPT_KEY = "prompt_encoder.embeddings"


class TenantError(BundleError):
    """A tenant delta cannot be loaded or bound (pin/shape/structure)."""


class UnknownTenant(KeyError):
    """A request named a tenant the registry has never heard of."""


class TenantEntry:
    """One loaded tenant: materialized delta modules + threshold."""

    __slots__ = ("name", "peft", "threshold", "soft_prompt", "adapters",
                 "fingerprint", "param_count", "nbytes")

    def __init__(self, name: str, peft: str, threshold: Optional[float],
                 soft_prompt: Optional[SoftPrompt],
                 adapters: Optional[List[Adapter]], fingerprint: str,
                 param_count: int, nbytes: int) -> None:
        self.name = name
        self.peft = peft
        self.threshold = threshold
        self.soft_prompt = soft_prompt
        self.adapters = adapters
        self.fingerprint = fingerprint
        self.param_count = param_count
        self.nbytes = nbytes

    @property
    def fusable(self) -> bool:
        """Only pure prompt-matrix deltas can share a fused batch."""
        return self.soft_prompt is not None and not self.adapters


class _FusedPromptView:
    """Duck-typed model view for one mixed-tenant fastpath call.

    Presents the base model's ``lm``/``verbalizer``/``_assemble`` with a
    stacked ``(T*P, D)`` prompt table; row ``i`` gathers from block
    ``slots[i]`` via a per-row index offset.  Offsets are also added at
    non-prompt positions, which is safe: the offset index stays in range
    and ``np.where(is_prompt, ...)`` discards the gathered value there.
    """

    def __init__(self, base, stack: np.ndarray, slots: np.ndarray,
                 num_tokens: int) -> None:
        self._base = base
        self._stack = stack
        self._slots = slots
        self._num_tokens = num_tokens
        self.lm = base.lm
        self.verbalizer = base.verbalizer
        self.tokenizer = base.tokenizer

    def prompt_encoder(self):
        return SimpleNamespace(data=self._stack)

    def _assemble(self, encodings):
        ids, pad_mask, is_prompt, prompt_idx, mask_positions = \
            self._base._assemble(encodings)
        prompt_idx = prompt_idx + self._slots[:, None] * self._num_tokens
        return ids, pad_mask, is_prompt, prompt_idx, mask_positions


class TenantRegistry:
    """LRU-managed tenant deltas bindable onto one shared backbone."""

    def __init__(self, capacity: int = 64,
                 tenants_dir: Optional[PathLike] = None) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self.capacity = capacity
        self._paths: Dict[str, Path] = {}
        self._loaded: "OrderedDict[str, TenantEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self._model = None
        self._fingerprint: Optional[str] = None
        self._base_prompt_encoder = None
        self._bound: Optional[str] = None
        if tenants_dir is not None:
            self.load_dir(tenants_dir)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, path: PathLike) -> None:
        """Register a tenant directory; the delta loads lazily on first use."""
        path = Path(path)
        if not (path / _MANIFEST_FILE).exists():
            raise BundleError(f"{path} is not a delta bundle "
                              f"(no {_MANIFEST_FILE})")
        with self._lock:
            self._paths[name] = path
            # a re-register invalidates any resident materialization
            if name in self._loaded:
                if name == self._bound:
                    self.bind(None)
                del self._loaded[name]

    def load_dir(self, path: PathLike) -> int:
        """Register every subdirectory holding a delta manifest."""
        path = Path(path)
        if not path.is_dir():
            raise BundleError(f"{path} is not a tenants directory")
        count = 0
        for child in sorted(path.iterdir()):
            if child.is_dir() and (child / _MANIFEST_FILE).exists():
                self.register(child.name, child)
                count += 1
        if count == 0:
            raise BundleError(f"{path} contains no delta bundles")
        return count

    def has(self, name: Optional[str]) -> bool:
        if name is None:
            return True
        with self._lock:
            return name in self._paths

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._paths)

    # ------------------------------------------------------------------
    # Backbone attachment
    # ------------------------------------------------------------------
    def attach(self, model) -> None:
        """Point the registry at the (possibly hot-swapped) backbone.

        Recomputes the fingerprint the deltas are pinned against, drops
        every materialization (entries built against the old weights are
        stale -- they reload from their registered paths on demand), and
        remembers the pristine ``prompt_encoder`` to restore on unbind.
        """
        with self._lock:
            if self._model is not None and self._bound is not None:
                self.bind(None)
            self._model = model
            self._fingerprint = backbone_fingerprint(model.lm)
            self._base_prompt_encoder = model.prompt_encoder
            self._bound = None
            self._loaded.clear()

    @property
    def model(self):
        """The attached backbone (the scheduler checks snapshot identity)."""
        return self._model

    @property
    def fingerprint(self) -> Optional[str]:
        return self._fingerprint

    @property
    def bound(self) -> Optional[str]:
        return self._bound

    def _require_model(self):
        if self._model is None:
            raise TenantError("registry has no backbone; attach(model) first")
        return self._model

    # ------------------------------------------------------------------
    # Loading / eviction
    # ------------------------------------------------------------------
    def entry(self, name: str) -> TenantEntry:
        """The materialized delta for ``name``, hot-loading if needed."""
        with self._lock:
            if name in self._loaded:
                self._loaded.move_to_end(name)
                return self._loaded[name]
            path = self._paths.get(name)
            if path is None:
                raise UnknownTenant(name)
            entry = self._materialize(name, DeltaBundle.load(path))
            self._loaded[name] = entry
            tel = get_telemetry()
            if tel.enabled:
                tel.metrics.counter("tenant.loads").inc()
            while len(self._loaded) > self.capacity:
                victim = next(iter(self._loaded))
                if victim == self._bound:
                    # never evict the tenant currently on the backbone;
                    # it is by definition the hottest entry
                    self._loaded.move_to_end(victim)
                    victim = next(iter(self._loaded))
                    if victim == name or victim == self._bound:
                        break
                del self._loaded[victim]
                if tel.enabled:
                    tel.metrics.counter("tenant.evictions").inc()
            return entry

    def _materialize(self, name: str, delta: DeltaBundle) -> TenantEntry:
        model = self._require_model()
        if delta.fingerprint != self._fingerprint:
            raise TenantError(
                f"tenant {name!r} is pinned to backbone "
                f"{delta.fingerprint[:12]!r} but the registry serves "
                f"{str(self._fingerprint)[:12]!r}; re-tune the delta "
                f"against the deployed backbone")
        dtype = get_default_dtype()
        state = {k: np.asarray(v, dtype=dtype) for k, v in delta.state.items()}
        soft_prompt = None
        if _PROMPT_KEY in state:
            num_tokens = model.template.num_prompt_tokens
            if num_tokens <= 0:
                raise TenantError(
                    f"tenant {name!r} carries a soft prompt but the "
                    f"backbone template has no prompt slots")
            soft_prompt = SoftPrompt(num_tokens, model.lm.config.d_model,
                                     init=state.pop(_PROMPT_KEY))
        adapters: Optional[List[Adapter]] = None
        if delta.peft == "adapter":
            adapters = []
            d_model = model.lm.config.d_model
            for i in range(len(model.lm.encoder.layers)):
                for slot in ADAPTER_SLOTS:
                    prefix = f"lm.encoder.layer{i}.{slot}."
                    try:
                        down_w = state.pop(prefix + "down.weight")
                        down_b = state.pop(prefix + "down.bias")
                        up_w = state.pop(prefix + "up.weight")
                        up_b = state.pop(prefix + "up.bias")
                    except KeyError as exc:
                        raise TenantError(
                            f"tenant {name!r} delta is missing {exc.args[0]}"
                        ) from None
                    adapter = Adapter(d_model, down_w.shape[1])
                    adapter.down.weight.data = down_w.copy()
                    adapter.down.bias.data = down_b.copy()
                    adapter.up.weight.data = up_w.copy()
                    adapter.up.bias.data = up_b.copy()
                    adapters.append(adapter)
        if state:
            raise TenantError(
                f"tenant {name!r} delta has unrecognized entries "
                f"{sorted(state)}")
        return TenantEntry(
            name=name, peft=delta.peft, threshold=delta.threshold,
            soft_prompt=soft_prompt, adapters=adapters,
            fingerprint=delta.fingerprint, param_count=delta.param_count,
            nbytes=delta.nbytes())

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    @staticmethod
    def _set_prompt_encoder(model, encoder) -> None:
        if encoder is None:
            # Module.__setattr__ would leave the old child registered
            model._modules.pop("prompt_encoder", None)
            object.__setattr__(model, "prompt_encoder", None)
        else:
            model.prompt_encoder = encoder

    def bind(self, name: Optional[str]) -> Optional[TenantEntry]:
        """Mutate the shared backbone to serve ``name`` (None = base).

        Called by the scheduler between micro-batches; a no-op when the
        tenant is already bound.  Returns the bound entry (None for the
        base model).
        """
        with self._lock:
            model = self._require_model()
            if name == self._bound:
                if name is not None:
                    self._loaded.move_to_end(name)
                    return self._loaded[name]
                return None
            if self._bound is not None:
                remove_adapters(model.lm)
                self._set_prompt_encoder(model, self._base_prompt_encoder)
                self._bound = None
            if name is None:
                return None
            entry = self.entry(name)
            if entry.soft_prompt is not None:
                self._set_prompt_encoder(model, entry.soft_prompt)
            if entry.adapters:
                attach_adapters(model.lm, entry.adapters)
            self._bound = name
            return entry

    def threshold_for(self, name: Optional[str],
                      default: Optional[float]) -> Optional[float]:
        if name is None:
            return default
        threshold = self.entry(name).threshold
        return default if threshold is None else threshold

    # ------------------------------------------------------------------
    # Mixed-tenant fusion
    # ------------------------------------------------------------------
    def fusable(self, name: Optional[str]) -> bool:
        """Can rows of this tenant share a batch with other tenants?

        The base model (``None``) fuses when its template has prompt
        slots; a tenant fuses when its delta is a pure soft prompt.
        Adapter tenants mutate the transformer stack and never fuse.
        """
        model = self._require_model()
        if name is None:
            return (model.template.num_prompt_tokens > 0
                    and self._base_prompt_encoder is not None)
        if not self.has(name):
            raise UnknownTenant(name)
        return self.entry(name).fusable

    def _prompt_matrix(self, name: Optional[str]) -> np.ndarray:
        if name is None:
            with no_grad():
                return np.asarray(self._base_prompt_encoder().data)
        entry = self.entry(name)
        if not entry.fusable:
            raise TenantError(f"tenant {name!r} ({entry.peft}) cannot be "
                              f"fused into a mixed batch")
        return entry.soft_prompt.embeddings.data

    def fused_probs(self, engine, pairs: Sequence,
                    tenants: Sequence[Optional[str]]) -> np.ndarray:
        """Score one mixed-tenant micro-batch in a single fastpath call.

        All named tenants must be fusable (pure soft prompts).  The base
        backbone is restored first (``bind(None)``), so adapter state from
        a previous serial batch can never leak into a fused one.
        """
        if len(pairs) != len(tenants):
            raise ValueError("one tenant id per pair required")
        with self._lock:
            model = self._require_model()
            self.bind(None)
            num_tokens = model.template.num_prompt_tokens
            if num_tokens <= 0:
                raise TenantError(
                    "mixed-tenant fusion requires a continuous template")
            encodings = engine.encodings(model, pairs)
            slot_of: Dict[Optional[str], int] = {}
            matrices: List[np.ndarray] = []
            for tenant in tenants:
                if tenant not in slot_of:
                    slot_of[tenant] = len(matrices)
                    matrices.append(self._prompt_matrix(tenant))
            stack = np.concatenate(matrices, axis=0)
            slots = np.array([slot_of[t] for t in tenants], dtype=np.int64)
            view = _FusedPromptView(model, stack, slots, num_tokens)
            was_training = model.training
            model.train(False)
            try:
                with no_grad():
                    return prompt_forward_encoded(view, encodings)
            finally:
                model.train(was_training)

    # ------------------------------------------------------------------
    def note_request(self, name: Optional[str], count: int = 1) -> None:
        """Per-tenant request accounting (``tenant.requests.<name>``)."""
        tel = get_telemetry()
        if tel.enabled:
            label = name if name is not None else "_default"
            tel.metrics.counter(f"tenant.requests.{label}").inc(count)

    def stats(self) -> dict:
        with self._lock:
            return {
                "registered": len(self._paths),
                "loaded": len(self._loaded),
                "capacity": self.capacity,
                "bound": self._bound,
                "delta_bytes": int(sum(e.nbytes
                                       for e in self._loaded.values())),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"TenantRegistry(registered={len(self._paths)}, "
                f"loaded={len(self._loaded)}/{self.capacity}, "
                f"bound={self._bound!r})")
