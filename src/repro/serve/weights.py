"""Shared-memory model weights for replicated serving.

:class:`SharedBundleWeights` is the serving-side sibling of
:class:`repro.parallel.shm.ParameterPublisher`: one process (the pool
router) owns the weights, N forked replicas map them **zero-copy** --
each replica rebinds its model's ``Parameter.data`` arrays to numpy views
straight into the shared segment, so a swap never pickles or copies a
model per replica and all replicas flip together when the version counter
moves.

Publishing must not tear a batch that another process is mid-forward on,
so the store double-buffers:

* the flat parameter buffer has ``slots`` rows (default 2); version ``v``
  lives in row ``v % slots``;
* :meth:`publish` writes the *inactive* row completely (weights, then
  threshold and bundle name side-channels), and only then bumps the
  version counter -- a replica that still reads the old version sees an
  untouched row;
* before overwriting a row, publish waits until every **live** replica
  has adopted at least ``version - slots + 1`` (replicas record their
  adopted version in a shared per-replica array at each batch boundary),
  i.e. nobody can still be computing on the row about to be reused.  A
  replica that stops adopting (dead or wedged) only blocks for
  ``guard_timeout_s``; the pool detects and respawns it separately.

Replica side, :meth:`adopt` is called at every batch boundary (the
replica server's ``_snapshot``): when the version moved it rebinds all
parameter views onto the new row and updates the bundle's threshold and
name from the side-channels, then records the adoption.  Rebinding is a
handful of ``np.ndarray`` view constructions -- no weight bytes move.

A :meth:`fingerprint` derived from the parameter names/shapes/dtype pins
publisher and replicas to one architecture, exactly like the training
publisher's config fingerprint.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_telemetry
from ..parallel.shm import SharedArray

#: fixed byte budget for the published bundle name (utf-8, truncated)
_NAME_BYTES = 120


class SharedBundleWeights:
    """Double-buffered shared-memory weight slots + version guard."""

    def __init__(self, model, replicas: int, slots: int = 2,
                 guard_timeout_s: float = 5.0) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if slots < 2:
            raise ValueError("need >= 2 slots to double-buffer swaps")
        self.specs = self._specs(model)
        self.flat_size = sum(size for _, _, size in self.specs)
        self.dtype = np.dtype(next(iter(model.parameters())).data.dtype)
        self.replicas = int(replicas)
        self.slots = int(slots)
        self.guard_timeout_s = float(guard_timeout_s)
        self._values = SharedArray((self.slots, self.flat_size), self.dtype)
        self._version = SharedArray((1,), np.int64)
        #: adopted[r] = newest version replica r has rebound to (written by
        #: the replica at its batch boundary, read by the publish guard)
        self._adopted = SharedArray((self.replicas,), np.int64)
        self._thresholds = SharedArray((self.slots,), np.float64)
        self._has_threshold = SharedArray((self.slots,), np.int8)
        self._names = SharedArray((self.slots, _NAME_BYTES + 1), np.uint8)

    # ------------------------------------------------------------------
    @staticmethod
    def _specs(model) -> Tuple[Tuple[str, Tuple[int, ...], int], ...]:
        specs = tuple((name, tuple(param.data.shape), int(param.data.size))
                      for name, param in model.named_parameters())
        if not specs:
            raise ValueError("model has no parameters to share")
        return specs

    def fingerprint(self) -> tuple:
        return (str(self.dtype),) + self.specs

    def _check(self, model) -> None:
        specs = self._specs(model)
        if specs != self.specs:
            get_telemetry().metrics.counter(
                "pool.fingerprint_mismatches").inc()
            raise ValueError(
                "shared-weight fingerprint mismatch: the published model's "
                "parameter names/shapes differ from the pool's architecture")

    @property
    def is_shared(self) -> bool:
        """True when every segment is real shared memory; without it a
        publish would be invisible to forked replicas."""
        return all(seg.is_shared for seg in
                   (self._values, self._version, self._adopted,
                    self._thresholds, self._has_threshold, self._names))

    @property
    def version(self) -> int:
        return int(self._version.array[0])

    def adopted_versions(self) -> List[int]:
        return [int(v) for v in self._adopted.array]

    # ------------------------------------------------------------------
    # Publisher side (pool router)
    # ------------------------------------------------------------------
    def _guard(self, floor: int, live: Sequence[int]) -> bool:
        """Wait until every live replica adopted >= ``floor``; False on
        timeout (a stuck replica must not block swaps forever -- the pool
        respawns it, and a respawned replica adopts the newest version)."""
        deadline = time.monotonic() + self.guard_timeout_s
        while True:
            adopted = self._adopted.array
            if all(int(adopted[r]) >= floor for r in live):
                return True
            if time.monotonic() >= deadline:
                get_telemetry().metrics.counter(
                    "pool.swap_guard_timeouts").inc()
                return False
            time.sleep(0.0005)

    def publish(self, model, name: str = "bundle",
                threshold: Optional[float] = None,
                live: Optional[Sequence[int]] = None) -> int:
        """Write ``model``'s weights into the next slot and bump the
        version; returns the new version.  ``live`` lists the replica
        indices the overwrite guard must wait for (default: all)."""
        self._check(model)
        version = self.version + 1
        slot = version % self.slots
        if version > self.slots:
            # the row being reused last held version - slots; wait until
            # nobody can still be forwarding on it
            self._guard(version - self.slots + 1,
                        range(self.replicas) if live is None else live)
        flat = self._values.array[slot]
        offset = 0
        for (_, _, size), (_, param) in zip(self.specs,
                                            model.named_parameters()):
            np.copyto(flat[offset:offset + size],
                      param.data.reshape(-1), casting="same_kind")
            offset += size
        self._thresholds.array[slot] = (0.0 if threshold is None
                                        else float(threshold))
        self._has_threshold.array[slot] = 0 if threshold is None else 1
        encoded = str(name).encode("utf-8")[:_NAME_BYTES]
        row = self._names.array[slot]
        row[0] = len(encoded)
        row[1:1 + len(encoded)] = np.frombuffer(encoded, dtype=np.uint8)
        # weights and side-channels are complete: only now flip the version
        self._version.array[0] = version
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("pool.publishes").inc()
            tel.metrics.gauge("pool.swap_version").set(version)
        return version

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------
    def slot_views(self, version: int) -> List[np.ndarray]:
        """Zero-copy parameter views of ``version``'s slot, in spec order."""
        flat = self._values.array[version % self.slots]
        views, offset = [], 0
        for _, shape, size in self.specs:
            views.append(flat[offset:offset + size].reshape(shape))
            offset += size
        return views

    def read_meta(self, version: int) -> Tuple[str, Optional[float]]:
        slot = version % self.slots
        row = self._names.array[slot]
        name = bytes(row[1:1 + int(row[0])]).decode("utf-8", "replace")
        threshold = (float(self._thresholds.array[slot])
                     if self._has_threshold.array[slot] else None)
        return name, threshold

    def adopt(self, model, replica: int, seen: int) -> int:
        """Rebind ``model`` onto the newest slot if the version moved past
        ``seen``; records the adoption and returns the version now in use.

        Called at every batch boundary.  The parameters become views into
        shared memory -- the model must only be *read* (serving forwards
        run under ``no_grad``), never updated in place.

        The no-movement path skips the fingerprint check on purpose: a
        bound tenant delta may have added parameters (adapters) to the
        model between batches, and nothing is rebound in that case.  When
        the version did move the caller must present the pristine
        backbone topology (unbind tenant deltas first) or the check
        refuses the rebind.
        """
        version = self.version
        if version == seen:
            return seen
        self._check(model)
        for view, (_, param) in zip(self.slot_views(version),
                                    model.named_parameters()):
            param.data = view
        self._adopted.array[replica] = version
        return version

    # ------------------------------------------------------------------
    def close(self) -> None:
        for seg in (self._values, self._version, self._adopted,
                    self._thresholds, self._has_threshold, self._names):
            seg.close()

    def __enter__(self) -> "SharedBundleWeights":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
