"""Text substrate: vocabulary, tokenizer, corpus, TF-IDF, string similarity."""

from . import lexicon
from .corpus import build_corpus, domain_sentence, relation_statement, serialized_record
from .similarity import (
    cosine_tokens, jaccard, jaccard_text, levenshtein, levenshtein_similarity,
    overlap_coefficient, token_set,
)
from .tfidf import TfIdfModel, TfIdfSummarizer, summarize_texts
from .tokenizer import Encoding, Tokenizer, basic_tokenize, build_vocab, wordpiece
from .vocab import (
    CLS_TOKEN, COL_TOKEN, MASK_TOKEN, PAD_TOKEN, SEP_TOKEN, SPECIAL_TOKENS,
    UNK_TOKEN, VAL_TOKEN, Vocabulary,
)

__all__ = [
    "lexicon",
    "Vocabulary", "SPECIAL_TOKENS",
    "PAD_TOKEN", "UNK_TOKEN", "CLS_TOKEN", "SEP_TOKEN", "MASK_TOKEN",
    "COL_TOKEN", "VAL_TOKEN",
    "Tokenizer", "Encoding", "basic_tokenize", "build_vocab", "wordpiece",
    "build_corpus", "domain_sentence", "relation_statement", "serialized_record",
    "TfIdfModel", "TfIdfSummarizer", "summarize_texts",
    "jaccard", "jaccard_text", "cosine_tokens", "levenshtein",
    "levenshtein_similarity", "overlap_coefficient", "token_set",
]
