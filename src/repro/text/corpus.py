"""Synthetic pre-training corpus for the MiniLM.

RoBERTa's pre-training corpus is 160GB of web text; offline we synthesize a
deterministic corpus that plays the same role *for this task distribution*:

* **domain sentences** expose the model to the same content vocabulary the
  benchmark generators use;
* **relation statements** are cloze-style sentences ("<x> and <y> . they are
  similar", "<x> is different to <y>") whose filled word is drawn from the
  label-word sets.  This is the "rich knowledge distributed in LMs" (paper
  Section 1) that prompt-tuning can stimulate and a freshly initialized
  classification head cannot;
* **serialized records** familiarize the model with the [COL]/[VAL] tag
  structure of Section 2.2.

Everything is driven by a seeded generator, so the pre-trained checkpoint is
reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from . import lexicon


def _phrase(rng: np.random.Generator, pool: Sequence[str], low: int, high: int) -> str:
    n = int(rng.integers(low, high + 1))
    return " ".join(rng.choice(pool, size=n, replace=True))


def _perturb(rng: np.random.Generator, phrase: str, pool: Sequence[str]) -> str:
    """Light corruption: drop / swap / substitute one word (still 'similar')."""
    words = phrase.split()
    if len(words) > 1 and rng.random() < 0.5:
        del words[int(rng.integers(len(words)))]
    else:
        words[int(rng.integers(len(words)))] = str(rng.choice(pool))
    return " ".join(words)


def domain_sentence(rng: np.random.Generator, domain: str) -> str:
    """A fluent-ish sentence over one domain's pool."""
    pool = lexicon.DOMAIN_POOLS[domain]
    glue = lexicon.GLUE_WORDS
    parts = [
        str(rng.choice(glue)), _phrase(rng, pool, 1, 3),
        str(rng.choice(glue)), _phrase(rng, pool, 1, 3),
        str(rng.choice(glue)), _phrase(rng, pool, 1, 2),
    ]
    return " ".join(parts)


def _record_fields(rng: np.random.Generator, domain: str):
    """A small serialized-record field list: [(attr, value), ...]."""
    pool = lexicon.DOMAIN_POOLS[domain]
    attrs = ["name", "type", "city", "title", "venue", "place", "kind"]
    n = int(rng.integers(2, 4))
    chosen = rng.choice(attrs, size=n, replace=False)
    return [(str(a), _phrase(rng, pool, 1, 3)) for a in chosen]


def _render_fields(fields) -> str:
    return " ".join(f"[COL] {attr} [VAL] {value}" for attr, value in fields)


def relation_statement(rng: np.random.Generator, domain: str, positive: bool) -> str:
    """A cloze-style statement teaching label-word semantics over records.

    This mirrors the downstream decision boundary exactly:

    * *positive*: the right record is a surface perturbation of the left
      (typos, dropped words) -- the same entity, dirtied;
    * *negative*: one or two attribute *values* are replaced wholesale --
      a sibling entity that shares the rest of its surface text.

    Both template shapes from paper Section 3.1 are emitted, over
    [COL]/[VAL]-serialized records half the time and plain phrases
    otherwise.
    """
    pool = lexicon.DOMAIN_POOLS[domain]
    use_records = rng.random() < 0.6
    if use_records:
        fields = _record_fields(rng, domain)
        left = _render_fields(fields)
        if positive:
            right_fields = [(a, _perturb(rng, v, pool) if rng.random() < 0.6 else v)
                            for a, v in fields]
            word = str(rng.choice(lexicon.POSITIVE_LABEL_WORDS))
        else:
            right_fields = list(fields)
            n_changed = int(rng.integers(1, max(2, len(fields))))
            for idx in rng.choice(len(fields), size=n_changed, replace=False):
                attr, _ = right_fields[idx]
                right_fields[idx] = (attr, _phrase(rng, pool, 1, 3))
            word = str(rng.choice(lexicon.NEGATIVE_LABEL_WORDS))
        right = _render_fields(right_fields)
    else:
        left = _phrase(rng, pool, 2, 4)
        if positive:
            right = _perturb(rng, left, pool)
            word = str(rng.choice(lexicon.POSITIVE_LABEL_WORDS))
        else:
            right = _phrase(rng, pool, 2, 4)
            word = str(rng.choice(lexicon.NEGATIVE_LABEL_WORDS))
    if rng.random() < 0.5:
        return f"{left} {right} they are {word}"  # template T1 shape
    return f"{left} is {word} to {right}"  # template T2 shape


def serialized_record(rng: np.random.Generator, domain: str) -> str:
    """A [COL]/[VAL]-tagged pseudo record (Section 2.2 structure)."""
    pool = lexicon.DOMAIN_POOLS[domain]
    attrs = ["name", "type", "city", "year", "title", "venue", "price"]
    n = int(rng.integers(2, 5))
    chosen = rng.choice(attrs, size=n, replace=False)
    pieces = []
    for attr in chosen:
        if attr in ("year", "price"):
            value = str(int(rng.integers(1980, 2023)))
        else:
            value = _phrase(rng, pool, 1, 3)
        pieces.append(f"[COL] {attr} [VAL] {value}")
    return " ".join(pieces)


def build_corpus(num_sentences: int = 6000, seed: int = 0) -> List[str]:
    """Deterministic mixed corpus across all domains.

    Roughly 25% domain sentences, 60% relation statements (balanced
    positive/negative), 15% serialized records.
    """
    rng = np.random.default_rng(seed)
    domains = list(lexicon.DOMAIN_POOLS)
    corpus: List[str] = []
    for i in range(num_sentences):
        domain = domains[int(rng.integers(len(domains)))]
        bucket = rng.random()
        if bucket < 0.25:
            corpus.append(domain_sentence(rng, domain))
        elif bucket < 0.85:
            corpus.append(relation_statement(rng, domain, positive=bool(i % 2)))
        else:
            corpus.append(serialized_record(rng, domain))
    return corpus
