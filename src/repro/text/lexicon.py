"""Shared domain word pools.

These lexicons serve two purposes that must stay coupled:

1. The synthetic benchmark generators (``repro.data.generators``) draw entity
   attribute values from these pools, giving each of the paper's eight
   datasets a realistic domain vocabulary (restaurants, citations, books,
   movies, products, geo points).
2. The MLM pre-training corpus (``repro.text.corpus``) is built over the same
   pools, so the MiniLM checkpoint genuinely *knows* this vocabulary before
   it ever sees a downstream task -- the pre-condition for the paper's claim
   that prompt-tuning surfaces pre-trained knowledge.
"""

from __future__ import annotations

from typing import Dict, List

# Label words (paper Section 3.1): the designed sets express a *general*
# binary relationship, the simple sets only strict matching (Figure 5).
POSITIVE_LABEL_WORDS: List[str] = ["matched", "similar", "relevant"]
NEGATIVE_LABEL_WORDS: List[str] = ["mismatched", "different", "irrelevant"]
SIMPLE_POSITIVE_LABEL_WORDS: List[str] = ["matched"]
SIMPLE_NEGATIVE_LABEL_WORDS: List[str] = ["mismatched"]

STOPWORDS: List[str] = [
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has",
    "he", "in", "is", "it", "its", "of", "on", "or", "that", "the", "to",
    "was", "were", "will", "with", "they", "this", "she", "we", "their",
]

GLUE_WORDS: List[str] = STOPWORDS + [
    "same", "entity", "record", "pair", "tables", "about", "between",
    "describes", "refers", "published", "located", "known", "called",
    "new", "also", "very", "not", "no", "yes", "which", "into", "over",
]

RESTAURANT_NAMES: List[str] = [
    "golden", "dragon", "palace", "bistro", "cafe", "grill", "kitchen",
    "garden", "house", "corner", "tavern", "diner", "pizzeria", "sushi",
    "noodle", "spice", "olive", "maple", "river", "sunset", "blue", "red",
    "royal", "little", "grand", "old", "village", "harbor", "star", "lotus",
]
CUISINES: List[str] = [
    "italian", "chinese", "mexican", "thai", "french", "indian", "japanese",
    "american", "greek", "korean", "vietnamese", "spanish", "seafood",
    "steakhouse", "vegetarian", "bakery", "barbecue", "mediterranean",
]
CITIES: List[str] = [
    "york", "angeles", "chicago", "houston", "phoenix", "boston", "seattle",
    "denver", "atlanta", "miami", "dallas", "portland", "austin", "pittsburgh",
    "oakland", "madison", "berkeley", "cambridge",
]
STREETS: List[str] = [
    "main", "oak", "pine", "maple", "cedar", "elm", "washington", "lake",
    "hill", "park", "broadway", "market", "church", "spring", "center",
    "union", "franklin", "highland",
]

RESEARCH_TOPICS: List[str] = [
    "efficient", "similarity", "search", "query", "database", "learning",
    "neural", "network", "entity", "matching", "graph", "index", "join",
    "stream", "distributed", "parallel", "optimization", "clustering",
    "classification", "embedding", "transformer", "language", "model",
    "knowledge", "retrieval", "ranking", "sampling", "approximate",
    "scalable", "adaptive", "incremental", "probabilistic", "semantic",
    "temporal", "spatial", "relational", "schema", "integration", "cleaning",
]
AUTHOR_NAMES: List[str] = [
    "smith", "johnson", "chen", "wang", "kumar", "garcia", "mueller",
    "tanaka", "lee", "brown", "davis", "wilson", "zhang", "liu", "patel",
    "nguyen", "kim", "gupta", "rossi", "silva", "fagin", "ullman", "widom",
    "stonebraker", "dewitt", "gray", "codd", "bernstein", "abiteboul",
]
VENUES: List[str] = [
    "sigmod", "vldb", "icde", "kdd", "www", "acl", "emnlp", "nips",
    "icml", "cikm", "edbt", "pods", "sigir", "aaai", "ijcai", "tkde",
]

BOOK_TITLE_WORDS: List[str] = [
    "introduction", "principles", "fundamentals", "advanced", "practical",
    "complete", "guide", "handbook", "systems", "programming", "design",
    "analysis", "theory", "applications", "modern", "essential", "mastering",
    "professional", "beginning", "teach", "yourself", "cookbook", "patterns",
    "sql", "server", "python", "java", "algorithms", "data", "structures",
    "internals", "troubleshooting", "architecture", "administration",
]
PUBLISHERS: List[str] = [
    "wiley", "pearson", "oreilly", "springer", "elsevier", "mcgraw",
    "cambridge", "oxford", "addison", "wesley", "sams", "packt", "manning",
    "apress", "prentice",
]

MOVIE_TITLE_WORDS: List[str] = [
    "shadow", "night", "return", "legend", "secret", "last", "first",
    "dark", "light", "city", "lost", "love", "war", "king", "queen",
    "dream", "storm", "fire", "ice", "moon", "silent", "broken", "golden",
    "journey", "story", "rise", "fall", "edge", "beyond", "forever",
]
GENRES: List[str] = [
    "drama", "comedy", "action", "thriller", "romance", "horror", "fantasy",
    "adventure", "mystery", "documentary", "animation", "western", "crime",
]
DIRECTOR_NAMES: List[str] = AUTHOR_NAMES

PRODUCT_BRANDS: List[str] = [
    "acme", "zenith", "apex", "nova", "vertex", "orion", "atlas", "titan",
    "pulse", "fusion", "quantum", "stellar", "prime", "delta", "omega",
    "lumen", "aero", "core", "flux", "nexus",
]
PRODUCT_TYPES: List[str] = [
    "laptop", "phone", "tablet", "monitor", "keyboard", "mouse", "headset",
    "speaker", "camera", "printer", "router", "charger", "adapter", "cable",
    "drive", "memory", "processor", "battery", "case", "stand",
]
PRODUCT_ADJECTIVES: List[str] = [
    "wireless", "portable", "compact", "ultra", "slim", "pro", "mini",
    "max", "lite", "premium", "gaming", "ergonomic", "rechargeable",
    "bluetooth", "digital", "smart", "fast", "heavy", "duty", "waterproof",
]

POI_NAMES: List[str] = [
    "museum", "library", "stadium", "theater", "gallery", "bridge",
    "tower", "cathedral", "monument", "fountain", "plaza", "terminal",
    "station", "campus", "pavilion", "arena", "observatory", "pier",
    "gardens", "hall",
]
POI_CATEGORIES: List[str] = [
    "landmark", "culture", "transport", "education", "recreation",
    "historic", "sports", "food", "shopping", "nature",
]

DOMAIN_POOLS: Dict[str, List[str]] = {
    "restaurant": RESTAURANT_NAMES + CUISINES + CITIES + STREETS,
    "citation": RESEARCH_TOPICS + AUTHOR_NAMES + VENUES,
    "book": BOOK_TITLE_WORDS + AUTHOR_NAMES + PUBLISHERS,
    "movie": MOVIE_TITLE_WORDS + GENRES + DIRECTOR_NAMES,
    "product": PRODUCT_BRANDS + PRODUCT_TYPES + PRODUCT_ADJECTIVES,
    "geo": POI_NAMES + POI_CATEGORIES + CITIES + STREETS,
}


def all_domain_words() -> List[str]:
    """Every content word any generator or template may emit, deduplicated."""
    seen: Dict[str, None] = {}
    pools = [
        GLUE_WORDS,
        POSITIVE_LABEL_WORDS,
        NEGATIVE_LABEL_WORDS,
        *DOMAIN_POOLS.values(),
    ]
    for pool in pools:
        for word in pool:
            seen.setdefault(word, None)
    return list(seen)
