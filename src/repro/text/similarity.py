"""Classic string / set similarity measures.

Used by the overlap blocker, the TDmatch graph builder, and tests.
"""

from __future__ import annotations

from collections import Counter
from math import sqrt
from typing import Iterable, Sequence, Set

from .tokenizer import basic_tokenize


def token_set(text: str) -> Set[str]:
    return set(basic_tokenize(text))


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (1.0 when both empty)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


def jaccard_text(a: str, b: str) -> float:
    return jaccard(token_set(a), token_set(b))


def overlap_coefficient(a: Iterable[str], b: Iterable[str]) -> float:
    """Szymkiewicz-Simpson overlap: |A∩B| / min(|A|, |B|)."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 1.0 if (not sa and not sb) else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def cosine_tokens(a: Sequence[str], b: Sequence[str]) -> float:
    """Cosine similarity between token count vectors."""
    ca, cb = Counter(a), Counter(b)
    if not ca or not cb:
        return 1.0 if (not ca and not cb) else 0.0
    dot = sum(ca[t] * cb[t] for t in ca.keys() & cb.keys())
    na = sqrt(sum(v * v for v in ca.values()))
    nb = sqrt(sum(v * v for v in cb.values()))
    return dot / (na * nb)


def levenshtein(a: str, b: str) -> int:
    """Edit distance with the standard two-row dynamic program."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance, in [0, 1]."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest
