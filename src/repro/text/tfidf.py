"""TF-IDF summarization of long textual entries (paper Appendix F).

Truncating long sequences loses matching-relevant information that is often
not at the beginning; following Ditto, we instead retain the non-stopword
tokens with the highest TF-IDF scores, preserving original order.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from .lexicon import STOPWORDS
from .tokenizer import basic_tokenize

_STOPWORD_SET = set(STOPWORDS)


class TfIdfModel:
    """Document-frequency statistics fitted over a corpus of texts."""

    def __init__(self) -> None:
        self._doc_freq: Counter = Counter()
        self._num_docs = 0

    def fit(self, texts: Iterable[str]) -> "TfIdfModel":
        for text in texts:
            self._num_docs += 1
            for token in set(basic_tokenize(text)):
                self._doc_freq[token] += 1
        return self

    @property
    def num_docs(self) -> int:
        return self._num_docs

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency."""
        df = self._doc_freq.get(token, 0)
        return math.log((1 + self._num_docs) / (1 + df)) + 1.0

    def scores(self, text: str) -> Dict[str, float]:
        """Per-token TF-IDF scores for one document."""
        tokens = basic_tokenize(text)
        if not tokens:
            return {}
        tf = Counter(tokens)
        total = len(tokens)
        return {tok: (count / total) * self.idf(tok) for tok, count in tf.items()}


class TfIdfSummarizer:
    """Retain the top-``max_tokens`` scoring non-stopword tokens, in order."""

    def __init__(self, model: Optional[TfIdfModel] = None, max_tokens: int = 64) -> None:
        if max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        self.model = model if model is not None else TfIdfModel()
        self.max_tokens = max_tokens

    def fit(self, texts: Iterable[str]) -> "TfIdfSummarizer":
        self.model.fit(texts)
        return self

    def summarize(self, text: str) -> str:
        tokens = [t for t in basic_tokenize(text) if t not in _STOPWORD_SET]
        if len(tokens) <= self.max_tokens:
            return " ".join(tokens)
        scores = self.model.scores(text)
        ranked = sorted(range(len(tokens)), key=lambda i: -scores.get(tokens[i], 0.0))
        keep = sorted(ranked[: self.max_tokens])
        return " ".join(tokens[i] for i in keep)


def summarize_texts(texts: Sequence[str], max_tokens: int = 64) -> List[str]:
    """Fit on ``texts`` and summarize each of them."""
    summarizer = TfIdfSummarizer(max_tokens=max_tokens).fit(texts)
    return [summarizer.summarize(t) for t in texts]
