"""WordPiece-style tokenizer for serialized GEM sequences.

Mirrors the HuggingFace tokenizer behaviour the paper depends on:

* special tags ([CLS], [SEP], [MASK], [COL], [VAL], ...) are atomic;
* text is lower-cased and split on whitespace/punctuation;
* numbers are split into single digits -- deliberately, because the paper's
  error analysis (Appendix C) hinges on LMs being poor at digit semantics,
  and digit-level tokens reproduce that behaviour;
* out-of-vocabulary words fall back to greedy longest-match subword pieces
  ("##"-prefixed continuations), and ultimately to single characters, so no
  input ever becomes an unrecoverable [UNK] unless it contains characters
  outside [a-z0-9].
"""

from __future__ import annotations

import re
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .vocab import SPECIAL_TOKENS, Vocabulary

_SPECIAL_SET = set(SPECIAL_TOKENS)
_WORD_RE = re.compile(r"[a-z]+|[0-9]|[^\sa-z0-9]")
_LETTERS = "abcdefghijklmnopqrstuvwxyz"
_DIGITS = "0123456789"


def basic_tokenize(text: str) -> List[str]:
    """Split raw text into word / digit / punctuation tokens.

    Special tags pass through unchanged; everything else is lower-cased.
    Digits come out one per token.
    """
    tokens: List[str] = []
    for chunk in text.split():
        if chunk in _SPECIAL_SET:
            tokens.append(chunk)
            continue
        tokens.extend(_WORD_RE.findall(chunk.lower()))
    return tokens


#: entries kept per vocabulary in the wordpiece memo below
_WORDPIECE_CACHE_CAP = 32768


def wordpiece(word: str, vocab: Vocabulary, max_chars: int = 64) -> List[str]:
    """Greedy longest-match-first subword split of an alphabetic ``word``.

    Memoized per vocabulary: records repeat the same words constantly, and
    the greedy loop probes O(len^2) substrings per miss. The LRU lives on
    the vocabulary object (splits are a pure function of word + vocab
    contents) and is dropped whenever the vocabulary grows, since new
    entries can change a longest match.
    """
    cache = vocab.__dict__.get("_wordpiece_cache")
    if cache is None or vocab.__dict__.get("_wordpiece_vocab_len") != len(vocab):
        cache = OrderedDict()
        vocab._wordpiece_cache = cache
        vocab._wordpiece_vocab_len = len(vocab)
    hit = cache.get(word)
    if hit is not None:
        cache.move_to_end(word)
        return list(hit)
    pieces = _wordpiece_split(word, vocab, max_chars)
    cache[word] = tuple(pieces)
    if len(cache) > _WORDPIECE_CACHE_CAP:
        cache.popitem(last=False)
    return pieces


def _wordpiece_split(word: str, vocab: Vocabulary,
                     max_chars: int) -> List[str]:
    """The uncached greedy split behind :func:`wordpiece`."""
    if len(word) > max_chars:
        return ["[UNK]"]
    pieces: List[str] = []
    start = 0
    while start < len(word):
        end = len(word)
        piece = None
        while end > start:
            candidate = word[start:end]
            if start > 0:
                candidate = "##" + candidate
            if candidate in vocab:
                piece = candidate
                break
            end -= 1
        if piece is None:
            return ["[UNK]"]
        pieces.append(piece)
        start = end
    return pieces


@dataclass
class Encoding:
    """Token ids plus the attention/padding bookkeeping the encoder needs."""

    ids: List[int]
    tokens: List[str]

    def __len__(self) -> int:
        return len(self.ids)


class Tokenizer:
    """Tokenizer bound to a :class:`Vocabulary`."""

    def __init__(self, vocab: Vocabulary) -> None:
        self.vocab = vocab

    def tokenize(self, text: str) -> List[str]:
        """Text -> subword token strings (no special wrapping)."""
        out: List[str] = []
        for token in basic_tokenize(text):
            if token in _SPECIAL_SET or token in self.vocab:
                out.append(token)
            elif token.isalpha():
                out.extend(wordpiece(token, self.vocab))
            else:
                out.append("[UNK]")
        return out

    def encode(self, text: str, max_len: Optional[int] = None,
               add_special: bool = True) -> Encoding:
        """Encode a single text as [CLS] tokens [SEP]."""
        tokens = self.tokenize(text)
        if add_special:
            budget = None if max_len is None else max_len - 2
            if budget is not None:
                tokens = tokens[:max(budget, 0)]
            tokens = ["[CLS]", *tokens, "[SEP]"]
        elif max_len is not None:
            tokens = tokens[:max_len]
        return Encoding(ids=self.vocab.encode(tokens), tokens=tokens)

    def encode_pair(self, left: str, right: str, max_len: int) -> Encoding:
        """Encode ``[CLS] left [SEP] right [SEP]`` with longest-first truncation."""
        a = self.tokenize(left)
        b = self.tokenize(right)
        budget = max_len - 3
        if budget < 0:
            raise ValueError(f"max_len={max_len} too small for a sequence pair")
        while len(a) + len(b) > budget:
            if len(a) >= len(b):
                a.pop()
            else:
                b.pop()
        tokens = ["[CLS]", *a, "[SEP]", *b, "[SEP]"]
        return Encoding(ids=self.vocab.encode(tokens), tokens=tokens)


def build_vocab(texts: Iterable[str], max_words: int = 4000,
                min_count: int = 1) -> Vocabulary:
    """Build a vocabulary from raw texts.

    Always includes: single letters + digits (standalone and as "##"
    continuations) so the wordpiece fallback can spell out any unseen word,
    then the most frequent whole words.
    """
    counts: Counter = Counter()
    for text in texts:
        for token in basic_tokenize(text):
            if token not in _SPECIAL_SET:
                counts[token] += 1

    vocab = Vocabulary()
    for ch in _LETTERS + _DIGITS:
        vocab.add(ch)
        vocab.add("##" + ch)
    # Frequent bigram continuations make wordpiece splits shorter.
    for first in _LETTERS:
        for second in "aeiounrst":
            vocab.add("##" + first + second)

    added_words = 0
    for token, count in counts.most_common():
        if added_words >= max_words:
            break
        if count >= min_count and token not in vocab:
            vocab.add(token)
            added_words += 1
    return vocab
