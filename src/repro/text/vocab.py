"""Vocabulary with the special tokens the GEM serialization needs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"
COL_TOKEN = "[COL]"
VAL_TOKEN = "[VAL]"

SPECIAL_TOKENS: List[str] = [
    PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN, COL_TOKEN, VAL_TOKEN,
]


class Vocabulary:
    """Bidirectional token <-> id mapping with fixed special tokens.

    Special tokens always occupy ids 0..6 in the order of
    :data:`SPECIAL_TOKENS`, so checkpoints remain compatible across
    vocabularies built from different corpora.
    """

    def __init__(self, tokens: Optional[Iterable[str]] = None) -> None:
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        if tokens is not None:
            for token in tokens:
                self.add(token)

    def _add(self, token: str) -> int:
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    def add(self, token: str) -> int:
        """Add ``token`` if absent; return its id."""
        if not token:
            raise ValueError("cannot add an empty token")
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        return self._add(token)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        """Return the id of ``token``, falling back to [UNK]."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, index: int) -> str:
        if not 0 <= index < len(self._id_to_token):
            raise IndexError(f"token id {index} out of range (vocab size {len(self)})")
        return self._id_to_token[index]

    def encode(self, tokens: Iterable[str]) -> List[int]:
        return [self.id_of(t) for t in tokens]

    def decode(self, ids: Iterable[int]) -> List[str]:
        return [self.token_of(i) for i in ids]

    # Convenience ids -------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK_TOKEN]

    @property
    def col_id(self) -> int:
        return self._token_to_id[COL_TOKEN]

    @property
    def val_id(self) -> int:
        return self._token_to_id[VAL_TOKEN]

    @property
    def special_ids(self) -> List[int]:
        return [self._token_to_id[t] for t in SPECIAL_TOKENS]

    def tokens(self) -> List[str]:
        """All tokens in id order (including specials)."""
        return list(self._id_to_token)
