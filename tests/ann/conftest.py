"""Shared fixtures for the ANN tests: a tiny backbone-backed encoder and
seeded clustered vectors with well-separated neighborhoods."""

import numpy as np
import pytest

from repro.ann import RecordEncoder
from repro.lm import load_pretrained


@pytest.fixture(scope="package")
def tiny_encoder():
    lm, tok = load_pretrained("minilm-tiny")
    return RecordEncoder(lm=lm, tokenizer=tok, max_len=32)


def grouped_vectors(n, dim=64, group=10, seed=0, noise=0.15):
    """Unit vectors in duplicate groups of size ``group`` (the EM blocking
    shape: each entity has a handful of near-copies, everything else far).
    A query's top-``group`` is its own group with a wide score margin to
    rank group+1, so int8-vs-float32 top-k membership is stable."""
    rng = np.random.default_rng(seed)
    entities = -(-n // group)  # ceil
    protos = rng.normal(size=(entities, dim)).astype(np.float32)
    protos /= np.linalg.norm(protos, axis=1, keepdims=True)
    vectors = np.repeat(protos, group, axis=0)[:n]
    jitter = rng.normal(size=(n, dim)).astype(np.float32)
    jitter *= noise / np.linalg.norm(jitter, axis=1, keepdims=True)
    vectors = vectors + jitter          # perturbation norm == noise
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors.astype(np.float32)


def clustered_vectors(n, dim=32, clusters=10, seed=0, noise=0.12):
    """Unit vectors in tight clusters: nearest neighbors are unambiguous
    (same-cluster cosines far above cross-cluster ones), so ANN recall and
    int8 agreement are meaningful rather than tie-dominated."""
    rng = np.random.default_rng(seed)
    protos = rng.normal(size=(clusters, dim)).astype(np.float32)
    protos /= np.linalg.norm(protos, axis=1, keepdims=True)
    assign = rng.integers(0, clusters, size=n)
    vectors = protos[assign] + noise * rng.normal(size=(n, dim)).astype(
        np.float32)
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors.astype(np.float32)
