"""Tier-1 smoke pass over the ANN blocking benchmark logic.

Runs :func:`benchmarks.bench_ann_blocking.run_ann_blocking_bench` on a
tiny synthetic catalog and checks its structural outputs -- every config
reports throughput and recall, the quantization-agreement and recall
acceptance bars hold on the separated duplicate-group data -- WITHOUT
asserting anything about wall-clock speed, so the test is stable on
loaded CI machines. The real 10^5-record sparse-vs-ANN timing comparison
lives in ``benchmarks/bench_ann_blocking.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_ann_blocking import (  # noqa: E402
    run_ann_blocking_bench, synthetic_catalog,
)


@pytest.mark.smoke
def test_ann_blocking_benchmark_smoke():
    # k == the synthetic duplicate-group size: the top-k boundary then
    # sits on the wide in-group/out-group margin, so membership bars are
    # stable; k < group would put it on near-tied within-group ranks
    table, data = run_ann_blocking_bench(n=600, n_queries=10, k=10)

    assert data["n"] == 600 and data["queries"] == 10
    assert data["sparse_query_ms"] > 0
    assert len(data["configs"]) == 5
    for config in data["configs"]:
        assert config["qps"] > 0 and config["build_seconds"] >= 0
        assert 0.0 <= config["recall_at_k"] <= 1.0
    # duplicate-group data separates cleanly: the acceptance bars must
    # hold even at toy scale (membership, not timing)
    assert any(c["recall_at_k"] >= 0.95 for c in data["configs"])
    assert data["int8_agreement"] >= 0.99
    assert data["headline_config"] is not None
    assert data["embed"]["records_per_sec"] > 0
    assert "ANN blocking" in table


@pytest.mark.smoke
def test_synthetic_catalog_shape_and_determinism():
    texts, vectors, q_texts, q_vectors = synthetic_catalog(
        120, 7, dim=16, seed=3)
    texts2, vectors2, _, q_vectors2 = synthetic_catalog(
        120, 7, dim=16, seed=3)
    assert texts == texts2 and (vectors == vectors2).all()
    assert (q_vectors == q_vectors2).all()
    assert vectors.shape == (120, 16) and q_vectors.shape == (7, 16)
    # unit-normalized rows, non-empty token text on both sides
    import numpy as np
    np.testing.assert_allclose(np.linalg.norm(vectors, axis=1), 1.0,
                               atol=1e-5)
    assert all(t and t.startswith("tok") for t in texts + q_texts)
