"""DenseBlocker tests: BlockingResult contract, recall bookkeeping,
determinism, and parity with the serving-side DenseCandidateIndex."""

import numpy as np
import pytest

from repro.ann import DenseBlocker, exact_dense_topk
from repro.data.records import EntityRecord, Table
from repro.serve import DenseCandidateIndex

from .conftest import clustered_vectors


def _table(name, texts):
    return Table(name=name, kind="text", records=[
        EntityRecord.text_record(f"{name}{i}", text)
        for i, text in enumerate(texts)])


LEFT = ["red mountain bicycle", "espresso coffee machine",
        "wireless noise cancelling headphones"]
RIGHT = ["red mountain bike", "blue city bicycle",
         "espresso machine deluxe", "drip coffee maker",
         "wireless headphones", "wired earbuds",
         "mechanical keyboard", "gaming laptop computer"]


class TestDenseBlocker:
    @pytest.mark.parametrize("kind,kwargs", [
        ("ivf", {"nlist": 4, "nprobe": 4}),
        ("lsh", {"num_bands": 8, "band_bits": 4, "probes": 2}),
    ])
    def test_contract_and_determinism(self, tiny_encoder, kind, kwargs):
        blocker = DenseBlocker(encoder=tiny_encoder, kind=kind, k=3,
                               **kwargs)
        left, right = _table("l", LEFT), _table("r", RIGHT)
        result = blocker.block(left, right, measure_recall=True)
        again = blocker.block(left, right, measure_recall=True)
        assert result.total_pairs == len(LEFT) * len(RIGHT)
        assert 0 < len(result.candidates) <= len(LEFT) * 3
        assert 0.0 <= result.recall_at_k <= 1.0
        pairs = [(l.record_id, r.record_id) for l, r in result.candidates]
        assert pairs == [(l.record_id, r.record_id)
                         for l, r in again.candidates]
        assert result.recall_at_k == again.recall_at_k

    def test_recall_none_unless_measured(self, tiny_encoder):
        blocker = DenseBlocker(encoder=tiny_encoder, kind="ivf", k=2,
                               nlist=2, nprobe=2)
        result = blocker.block(_table("l", LEFT), _table("r", RIGHT))
        assert result.recall_at_k is None

    def test_full_probe_recall_is_high(self, tiny_encoder):
        # probing every list makes ANN == full int8 scan; recall against
        # exact float32 is then limited only by quantization ties
        blocker = DenseBlocker(encoder=tiny_encoder, kind="ivf", k=3,
                               nlist=2, nprobe=2)
        result = blocker.block(_table("l", LEFT), _table("r", RIGHT),
                               measure_recall=True)
        assert result.recall_at_k >= 0.8

    def test_empty_tables(self, tiny_encoder):
        blocker = DenseBlocker(encoder=tiny_encoder, k=2)
        result = blocker.block(_table("l", []), _table("r", []),
                               measure_recall=True)
        assert result.candidates == [] and result.total_pairs == 0
        assert result.recall_at_k == 1.0
        assert result.reduction_ratio == 1.0

    def test_min_score_filters(self, tiny_encoder):
        loose = DenseBlocker(encoder=tiny_encoder, kind="ivf", k=5,
                             nlist=2, nprobe=2)
        tight = DenseBlocker(encoder=tiny_encoder, kind="ivf", k=5,
                             nlist=2, nprobe=2, min_score=0.9999)
        left, right = _table("l", LEFT), _table("r", RIGHT)
        assert len(tight.block(left, right).candidates) <= \
            len(loose.block(left, right).candidates)

    def test_rejects_bad_k(self, tiny_encoder):
        with pytest.raises(ValueError):
            DenseBlocker(encoder=tiny_encoder, k=0)


class TestExactDenseTopk:
    def test_ordering_rule(self):
        vectors = np.eye(4, dtype=np.float32)
        ids = ["d", "c", "b", "a"]
        query = np.array([1.0, 1.0, 0.0, 0.0], dtype=np.float32)
        # rows 0 and 1 tie at 1.0 -> ordered by id: "c" before "d"
        assert exact_dense_topk(query, vectors, ids, 2) == ["c", "d"]


class TestServingParity:
    def test_blocker_matches_dense_candidate_index(self, tiny_encoder):
        """Offline DenseBlocker and online DenseCandidateIndex must agree:
        same encoder, same index kind/seed => same candidates per query,
        same order, same scores."""
        left, right = _table("l", LEFT), _table("r", RIGHT)
        blocker = DenseBlocker(encoder=tiny_encoder, kind="ivf", k=3,
                               nlist=4, nprobe=4)
        result = blocker.block(left, right)
        offline = {}
        for l, r in result.candidates:
            offline.setdefault(l.record_id, []).append(r.record_id)

        serving = DenseCandidateIndex(tiny_encoder, kind="ivf",
                                      nlist=4, nprobe=4, default_k=3)
        serving.add_many(list(right))
        serving.train()
        for record in left:
            online = [r.record_id
                      for r, _ in serving.candidates(record, 3)]
            assert online == offline.get(record.record_id, [])

    def test_index_reuse_via_build_index(self, tiny_encoder):
        right = _table("r", RIGHT)
        blocker = DenseBlocker(encoder=tiny_encoder, kind="lsh", k=2,
                               num_bands=8, band_bits=4, probes=2)
        index = blocker.build_index(right)
        assert blocker.last_index is index
        assert len(index) == len(RIGHT)
        query = tiny_encoder.encode_record(
            EntityRecord.text_record("q", "red mountain bike"))
        assert index.search(query, 2)
