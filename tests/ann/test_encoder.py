"""RecordEncoder tests: determinism, batching parity, content-addressed
caching, and degenerate records."""

import numpy as np

from repro.data.records import EntityRecord


def _records(texts, prefix="e"):
    return [EntityRecord.text_record(f"{prefix}{i}", text)
            for i, text in enumerate(texts)]


class TestEncoder:
    def test_unit_norm_float32(self, tiny_encoder):
        vectors = tiny_encoder.encode_records(
            _records(["alpha beta", "laptop computer", "red bicycle"]))
        assert vectors.dtype == np.float32
        assert vectors.shape == (3, tiny_encoder.dim)
        np.testing.assert_allclose(np.linalg.norm(vectors, axis=1), 1.0,
                                   atol=1e-5)

    def test_deterministic(self, tiny_encoder):
        records = _records(["alpha beta gamma", "delta epsilon"])
        first = tiny_encoder.encode_records(records)
        second = tiny_encoder.encode_records(records)
        np.testing.assert_array_equal(first, second)

    def test_batched_matches_single(self, tiny_encoder):
        records = _records(["one two", "three four five", "six", "seven"],
                           prefix="b")
        batched = tiny_encoder.encode_records(records)
        singles = np.stack([tiny_encoder.encode_record(r) for r in records])
        np.testing.assert_allclose(batched, singles, atol=1e-6)

    def test_cache_keyed_on_content(self, tiny_encoder):
        old = EntityRecord.text_record("same-id", "alpha beta")
        new = EntityRecord.text_record("same-id", "completely different")
        v_old = tiny_encoder.encode_record(old)
        v_new = tiny_encoder.encode_record(new)
        # same id, different content: the cache must not serve stale vectors
        assert not np.array_equal(v_old, v_new)
        np.testing.assert_array_equal(tiny_encoder.encode_record(old), v_old)

    def test_duplicate_records_one_forward(self, tiny_encoder):
        record = EntityRecord.text_record("dup", "duplicate text here")
        vectors = tiny_encoder.encode_records([record, record, record])
        assert np.array_equal(vectors[0], vectors[1])
        assert np.array_equal(vectors[0], vectors[2])

    def test_empty_record_is_finite(self, tiny_encoder):
        vectors = tiny_encoder.encode_records(
            [EntityRecord.text_record("empty", ""),
             EntityRecord(record_id="novals", kind="relational", values={})])
        assert np.all(np.isfinite(vectors))

    def test_empty_batch(self, tiny_encoder):
        out = tiny_encoder.encode_records([])
        assert out.shape == (0, tiny_encoder.dim)

    def test_fingerprint_pins_recipe(self, tiny_encoder):
        fp = tiny_encoder.encoding_fingerprint()
        assert "record-encoder" in fp and tiny_encoder.model_name in fp
