"""The emit() bench-regression guard: a committed BENCH_*.json with a
higher headline speedup at the same scale must not be silently
overwritten by a worse run."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _harness import BenchRegression, _headline_speedup, emit  # noqa: E402


def _read(results_dir, name):
    return json.loads((results_dir / f"BENCH_{name}.json").read_text())


@pytest.mark.smoke
class TestHeadlineSpeedup:
    def test_recursive_max_over_speedup_keys(self):
        payload = {"speedup": 3.0,
                   "configs": [{"config_speedup": 9.5, "recall": 0.9},
                               {"config_speedup": 2.0}],
                   "nested": {"speedup_vs_single": 4.0}}
        assert _headline_speedup(payload) == 9.5

    def test_no_speedup_keys(self):
        assert _headline_speedup({"qps": 100.0, "recall": 1.0}) == 0.0
        assert _headline_speedup(None) == 0.0
        assert _headline_speedup([1, "x", {"f1": 0.9}]) == 0.0

    def test_non_numeric_speedup_ignored(self):
        assert _headline_speedup({"speedup": "12x"}) == 0.0


@pytest.mark.smoke
class TestEmitGuard:
    def test_refuses_lower_speedup_same_scale(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        monkeypatch.delenv("REPRO_BENCH_FORCE", raising=False)
        emit("t", "guard", data={"speedup": 10.0}, results_dir=tmp_path)
        with pytest.raises(BenchRegression):
            emit("t", "guard", data={"speedup": 4.0}, results_dir=tmp_path)
        # the committed file is untouched by the refused write
        assert _read(tmp_path, "guard")["data"]["speedup"] == 10.0

    def test_slack_tolerates_timing_noise(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        monkeypatch.delenv("REPRO_BENCH_FORCE", raising=False)
        emit("t", "guard", data={"speedup": 10.0}, results_dir=tmp_path)
        emit("t", "guard", data={"speedup": 9.5}, results_dir=tmp_path)
        assert _read(tmp_path, "guard")["data"]["speedup"] == 9.5

    def test_force_param_overwrites(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        monkeypatch.delenv("REPRO_BENCH_FORCE", raising=False)
        emit("t", "guard", data={"speedup": 10.0}, results_dir=tmp_path)
        emit("t", "guard", data={"speedup": 1.0}, force=True,
             results_dir=tmp_path)
        assert _read(tmp_path, "guard")["data"]["speedup"] == 1.0

    def test_force_env_overwrites(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        emit("t", "guard", data={"speedup": 10.0}, results_dir=tmp_path)
        monkeypatch.setenv("REPRO_BENCH_FORCE", "1")
        emit("t", "guard", data={"speedup": 1.0}, results_dir=tmp_path)
        assert _read(tmp_path, "guard")["data"]["speedup"] == 1.0

    def test_different_scale_not_guarded(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FORCE", raising=False)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        emit("t", "guard", data={"speedup": 10.0}, results_dir=tmp_path)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        emit("t", "guard", data={"speedup": 1.0}, results_dir=tmp_path)
        assert _read(tmp_path, "guard")["scale"] == "smoke"

    def test_payload_without_speedups_never_guarded(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        monkeypatch.delenv("REPRO_BENCH_FORCE", raising=False)
        emit("t", "guard", data={"f1": 0.91}, results_dir=tmp_path)
        emit("t", "guard", data={"f1": 0.50}, results_dir=tmp_path)
        emit("t", "guard", results_dir=tmp_path)  # no data at all
        assert "data" not in _read(tmp_path, "guard")

    def test_corrupt_committed_json_not_fatal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        monkeypatch.delenv("REPRO_BENCH_FORCE", raising=False)
        (tmp_path / "BENCH_guard.json").write_text("{not json")
        emit("t", "guard", data={"speedup": 2.0}, results_dir=tmp_path)
        assert _read(tmp_path, "guard")["data"]["speedup"] == 2.0
