"""Index-level tests: catalog semantics (add/remove/replace), determinism,
recall sanity on separated data, and snapshot-under-lock concurrency."""

import threading

import numpy as np
import pytest

from repro.ann import IvfIndex, LshIndex, exact_topk_dot, kmeans, make_index

from .conftest import clustered_vectors


def _params(kind):
    return ({"nlist": 16, "nprobe": 8} if kind == "ivf"
            else {"num_bands": 12, "band_bits": 8, "probes": 2})


def _build(kind, vectors, seed=0):
    index = make_index(kind, vectors.shape[1], seed=seed, **_params(kind))
    if hasattr(index, "train"):
        index.train(vectors)
    index.add_many((f"r{i:05d}", vectors[i])
                   for i in range(vectors.shape[0]))
    return index


class TestFactory:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_index("annoy", 8)

    def test_kinds(self):
        assert isinstance(make_index("lsh", 8), LshIndex)
        assert isinstance(make_index("ivf", 8), IvfIndex)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_index("ivf", 0)
        with pytest.raises(ValueError):
            LshIndex(8, num_bands=0)
        with pytest.raises(ValueError):
            LshIndex(8, probes=99)  # > band_bits
        with pytest.raises(ValueError):
            IvfIndex(8, nprobe=0)


class TestKMeans:
    def test_deterministic(self):
        vectors = clustered_vectors(300, seed=1)
        a = kmeans(vectors, 8, seed=3)
        b = kmeans(vectors, 8, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_k_clamped_to_n(self):
        vectors = clustered_vectors(5, seed=2)
        assert kmeans(vectors, 50, seed=0).shape == (5, vectors.shape[1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 8), dtype=np.float32), 4)


@pytest.mark.parametrize("kind", ["lsh", "ivf"])
class TestCatalogSemantics:
    def test_add_remove_contains(self, kind):
        vectors = clustered_vectors(50, seed=3)
        index = _build(kind, vectors)
        assert len(index) == 50 and "r00007" in index
        assert index.remove("r00007") and "r00007" not in index
        assert not index.remove("r00007")  # already gone
        assert len(index) == 49

    def test_replace_on_readd(self, kind):
        vectors = clustered_vectors(50, seed=4)
        index = _build(kind, vectors)
        # move r00003 onto r00010's vector: probing near vectors[10]
        # must now find the replacement, never the stale v3 routing
        assert index.add("r00003", vectors[10]) is False
        assert len(index) == 50
        found = [rid for rid, _ in index.search(vectors[10], 3)]
        assert "r00003" in found
        scores = dict(index.search(vectors[10], 5))
        assert scores["r00003"] == pytest.approx(scores["r00010"], abs=1e-5)

    def test_removed_never_returned(self, kind):
        vectors = clustered_vectors(50, seed=5)
        index = _build(kind, vectors)
        index.remove("r00000")
        for qi in range(10):
            assert all(rid != "r00000"
                       for rid, _ in index.search(vectors[qi], 10))

    def test_row_reuse_after_tombstone(self, kind):
        vectors = clustered_vectors(20, seed=6)
        index = _build(kind, vectors)
        index.remove("r00005")
        assert index.stats()["tombstones"] == 1
        index.add("new", vectors[5])
        assert index.stats()["tombstones"] == 0  # row recycled
        assert "new" in {rid for rid, _ in index.search(vectors[5], 3)}

    def test_dim_mismatch_rejected(self, kind):
        index = make_index(kind, 8, **_params(kind))
        with pytest.raises(ValueError):
            index.add("x", np.zeros(9, dtype=np.float32))
        with pytest.raises(ValueError):
            index.search(np.zeros(9, dtype=np.float32), 1)

    def test_empty_index_search(self, kind):
        index = make_index(kind, 8, **_params(kind))
        assert index.search(np.ones(8, dtype=np.float32), 5) == []


@pytest.mark.parametrize("kind", ["lsh", "ivf"])
class TestDeterminism:
    def test_search_deterministic_across_rebuilds(self, kind):
        vectors = clustered_vectors(400, seed=7)
        first = _build(kind, vectors)
        # rebuild with a *shuffled* insertion order: results must be
        # byte-identical -- ordering is (-score, record_id), never storage
        order = np.random.default_rng(0).permutation(400)
        second = make_index(kind, vectors.shape[1], seed=0, **_params(kind))
        if hasattr(second, "train"):
            second.train(vectors)
        second.add_many((f"r{i:05d}", vectors[i]) for i in order)
        for qi in (0, 17, 399):
            assert first.search(vectors[qi], 10) == \
                second.search(vectors[qi], 10)

    def test_repeated_search_identical(self, kind):
        vectors = clustered_vectors(200, seed=8)
        index = _build(kind, vectors)
        results = [index.search(vectors[3], 7) for _ in range(3)]
        assert results[0] == results[1] == results[2]


class TestRecall:
    def test_ivf_recall_on_separated_data(self):
        vectors = clustered_vectors(1500, clusters=12, seed=9)
        index = _build("ivf", vectors)
        assert self._recall(index, vectors, k=10) >= 0.9

    def test_lsh_recall_on_separated_data(self):
        vectors = clustered_vectors(1500, clusters=12, seed=10)
        index = _build("lsh", vectors)
        assert self._recall(index, vectors, k=10) >= 0.85

    def test_untrained_ivf_is_exact_flat_scan(self):
        # untrained IVF probes every row, so its result must *equal* the
        # full int8 scan (same quantization, same ordering rule)
        from repro.ann import blocked_topk_dot, quantize_int8

        vectors = clustered_vectors(300, seed=11)
        index = IvfIndex(vectors.shape[1], nlist=8, nprobe=1)
        index.add_many((f"r{i:05d}", vectors[i]) for i in range(300))
        assert not index.is_trained
        codes, scales = quantize_int8(vectors)
        for qi in (0, 7, 299):
            rows, scores = blocked_topk_dot(vectors[qi], codes,
                                            scales, 10)
            reference = sorted(
                ((-float(scores[j]), f"r{rows[j]:05d}")
                 for j in range(len(rows))))[:10]
            got = index.search(vectors[qi], 10)
            assert [(rid, pytest.approx(-neg, abs=1e-6))
                    for neg, rid in reference] == got

    def test_more_probes_no_worse(self):
        vectors = clustered_vectors(1000, clusters=10, seed=12)
        narrow = make_index("ivf", vectors.shape[1], nlist=16, nprobe=1)
        wide = make_index("ivf", vectors.shape[1], nlist=16, nprobe=16)
        for index in (narrow, wide):
            index.train(vectors)
            index.add_many((f"r{i:05d}", vectors[i]) for i in range(1000))
        assert self._recall(wide, vectors, k=10) >= \
            self._recall(narrow, vectors, k=10)

    @staticmethod
    def _recall(index, vectors, k):
        ids = [f"r{i:05d}" for i in range(vectors.shape[0])]
        hits = wanted = 0
        for qi in range(0, vectors.shape[0], 25):
            rows, _ = exact_topk_dot(vectors[qi], vectors, k)
            exact = {ids[r] for r in rows.tolist()}
            got = {rid for rid, _ in index.search(vectors[qi], k)}
            hits += len(exact & got)
            wanted += min(k, len(exact))
        return hits / wanted


@pytest.mark.parametrize("kind", ["lsh", "ivf"])
class TestConcurrency:
    def test_search_stable_under_mutation(self, kind):
        """A mutator thread churns one half of the catalog while queries
        target the other half: every search must return exactly the
        stable records, identically ordered, with no torn reads."""
        vectors = clustered_vectors(200, clusters=4, seed=13)
        stable, churn = vectors[:100], vectors[100:]
        index = make_index(kind, vectors.shape[1], seed=0, **_params(kind))
        if hasattr(index, "train"):
            index.train(stable)
        index.add_many((f"s{i:05d}", stable[i]) for i in range(100))

        expected = [index.search(stable[qi], 5) for qi in range(10)]
        errors = []
        stop = threading.Event()

        def mutate():
            rng = np.random.default_rng(14)
            while not stop.is_set():
                i = int(rng.integers(0, 100))
                index.add(f"c{i:05d}", churn[i])
                index.add(f"c{i:05d}", churn[(i + 1) % 100])  # replace
                index.remove(f"c{i:05d}")

        def query():
            try:
                for _ in range(150):
                    for qi in range(10):
                        got = index.search(stable[qi], 5)
                        kept = [hit for hit in got
                                if hit[0].startswith("s")]
                        # churned ids may displace stable ones from the
                        # top-5, but the stable hits that remain must be
                        # the baseline ranking's prefix in the same order
                        # (scores may wobble at float32-ulp level when the
                        # probed batch shape changes) -- anything else is
                        # a torn read
                        want = expected[qi][:len(kept)]
                        if [rid for rid, _ in kept] != \
                                [rid for rid, _ in want] or any(
                                abs(a[1] - b[1]) > 1e-5
                                for a, b in zip(kept, want)):
                            errors.append((qi, expected[qi], kept))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        mutator = threading.Thread(target=mutate)
        querier = threading.Thread(target=query)
        mutator.start()
        querier.start()
        querier.join()
        stop.set()
        mutator.join()
        assert not errors

        # once the churned ids are gone, results return to the baseline
        for i in range(100):
            index.remove(f"c{i:05d}")
        assert [index.search(stable[qi], 5) for qi in range(10)] == expected
