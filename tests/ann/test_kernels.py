"""Kernel-level tests: quantization error bounds, fused-dot parity with
the naive dequantize-then-matmul reference, and tie-aware top-k."""

import numpy as np
import pytest

from repro.ann import (
    blocked_topk_dot, dequantize_int8, exact_topk_dot, fused_scaled_dot,
    gather_scaled_dot, quantize_int8, topk_candidates,
)
from repro.ann.kernels import BLOCK_ROWS

from .conftest import clustered_vectors, grouped_vectors


class TestQuantization:
    def test_roundtrip_error_bound(self):
        vectors = clustered_vectors(200, dim=48, seed=1)
        codes, scales = quantize_int8(vectors)
        assert codes.dtype == np.int8 and scales.dtype == np.float32
        # symmetric quantization: per-element error <= scale / 2
        err = np.abs(dequantize_int8(codes, scales) - vectors)
        assert np.all(err <= scales[:, None] / 2 + 1e-7)

    def test_codes_span_full_range(self):
        vectors = clustered_vectors(100, seed=2)
        codes, _ = quantize_int8(vectors)
        # the per-vector peak maps to +/-127 exactly
        assert np.abs(codes).max(axis=1).min() == 127

    def test_zero_vector_safe(self):
        vectors = np.zeros((3, 8), dtype=np.float32)
        codes, scales = quantize_int8(vectors)
        assert np.all(codes == 0) and np.all(scales == 1.0)
        assert np.all(dequantize_int8(codes, scales) == 0.0)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            quantize_int8(np.zeros(8, dtype=np.float32))

    def test_empty_input(self):
        codes, scales = quantize_int8(np.zeros((0, 8), dtype=np.float32))
        assert codes.shape == (0, 8) and scales.shape == (0,)


class TestFusedDot:
    def test_matches_dequantized_matmul(self):
        vectors = clustered_vectors(300, dim=32, seed=3)
        codes, scales = quantize_int8(vectors)
        query = vectors[5]
        fused = fused_scaled_dot(query, codes, scales)
        naive = dequantize_int8(codes, scales) @ query
        np.testing.assert_allclose(fused, naive, rtol=0, atol=1e-5)

    def test_blocking_boundary_exact(self):
        # spill over one block boundary: rows BLOCK_ROWS-2 .. BLOCK_ROWS+2
        n = BLOCK_ROWS + 3
        rng = np.random.default_rng(4)
        vectors = rng.normal(size=(n, 8)).astype(np.float32)
        codes, scales = quantize_int8(vectors)
        query = vectors[0] / np.linalg.norm(vectors[0])
        fused = fused_scaled_dot(query, codes, scales)
        naive = dequantize_int8(codes, scales) @ query
        np.testing.assert_allclose(fused, naive, rtol=0, atol=1e-4)

    def test_gather_matches_full(self):
        vectors = clustered_vectors(200, seed=5)
        codes, scales = quantize_int8(vectors)
        query = vectors[9]
        full = fused_scaled_dot(query, codes, scales)
        rows = np.array([0, 3, 199, 42, 42])  # repeats allowed
        np.testing.assert_array_equal(
            gather_scaled_dot(query, codes, scales, rows), full[rows])

    def test_empty_rows(self):
        vectors = clustered_vectors(10, seed=6)
        codes, scales = quantize_int8(vectors)
        out = gather_scaled_dot(vectors[0], codes, scales,
                                np.empty(0, dtype=np.int64))
        assert out.shape == (0,)
        assert fused_scaled_dot(vectors[0], codes[:0], scales[:0]).shape \
            == (0,)


class TestTopK:
    def test_includes_all_ties_at_kth(self):
        scores = np.array([5.0, 3.0, 3.0, 3.0, 1.0], dtype=np.float32)
        keep = set(topk_candidates(scores, 2).tolist())
        # k-th (2nd) score is 3.0 -- every row tied at 3.0 must survive
        assert keep == {0, 1, 2, 3}

    def test_short_input_returns_everything(self):
        scores = np.array([1.0, 2.0], dtype=np.float32)
        assert set(topk_candidates(scores, 10).tolist()) == {0, 1}

    def test_blocked_matches_exact_membership(self):
        vectors = clustered_vectors(5000, dim=24, seed=7)
        codes, scales = quantize_int8(vectors)
        for qi in (0, 17, 4999):
            rows, scores = blocked_topk_dot(vectors[qi], codes, scales, 10)
            ref = fused_scaled_dot(vectors[qi], codes, scales)
            ref_rows = topk_candidates(ref, 10)
            assert set(rows.tolist()) == set(ref_rows.tolist())
            np.testing.assert_allclose(scores, ref[rows], atol=1e-6)

    def test_blocked_streaming_crosses_block_boundary(self):
        n = BLOCK_ROWS + 50
        rng = np.random.default_rng(8)
        vectors = rng.normal(size=(n, 8)).astype(np.float32)
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        codes, scales = quantize_int8(vectors)
        query = vectors[n - 1]
        rows, _ = blocked_topk_dot(query, codes, scales, 5)
        ref = fused_scaled_dot(query, codes, scales)
        assert set(rows.tolist()) == set(topk_candidates(ref, 5).tolist())

    def test_exact_topk_is_float32_reference(self):
        vectors = clustered_vectors(1000, seed=9)
        query = vectors[3]
        rows, scores = exact_topk_dot(query, vectors, 5)
        full = vectors @ query
        assert set(rows.tolist()) == set(topk_candidates(full, 5).tolist())
        np.testing.assert_allclose(scores, full[rows], atol=1e-6)

    def test_int8_agreement_on_separated_data(self):
        # the acceptance-bar property at test scale: int8 top-k membership
        # agrees with float32 top-k on >= 99% of slots (duplicate-group
        # data, the EM blocking shape -- wide rank-k margins)
        vectors = grouped_vectors(2000, dim=64, group=10, seed=10)
        codes, scales = quantize_int8(vectors)
        agree = total = 0
        for qi in range(0, 2000, 40):
            exact_rows, _ = exact_topk_dot(vectors[qi], vectors, 10)
            int8_rows, _ = blocked_topk_dot(vectors[qi], codes, scales, 10)
            exact = set(exact_rows.tolist())
            got = set(int8_rows.tolist())
            agree += len(exact & got)
            total += min(10, len(exact))
        assert agree / total >= 0.99
