"""Gradient-check tests need float64 for central-difference stability."""

import numpy as np
import pytest

from repro.autograd.tensor import get_default_dtype, set_default_dtype


@pytest.fixture(autouse=True)
def _float64_for_gradcheck():
    previous = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)
