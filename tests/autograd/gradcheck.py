"""Numeric gradient checking helper shared by autograd tests."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd import Tensor


def numeric_grad(fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn().item()
        flat[i] = original - eps
        down = fn().item()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def assert_grad_close(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                      atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Check analytic vs numeric gradients of scalar ``fn()`` for each tensor."""
    for t in tensors:
        t.grad = None
    out = fn()
    out.backward()
    for t in tensors:
        assert t.grad is not None, "missing gradient"
        expected = numeric_grad(fn, t)
        np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=rtol)
