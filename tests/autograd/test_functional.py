"""Tests for nn functional ops: softmax, losses, dropout, gelu."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F

from .gradcheck import assert_grad_close

RNG = np.random.default_rng(11)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((4, 7)))
        probs = F.softmax(x).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)
        assert (probs >= 0).all()

    def test_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        probs = F.softmax(x).numpy()
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0, :2], [0.5, 0.5], atol=1e-9)

    def test_gradient(self):
        x = Tensor(RNG.standard_normal((3, 5)), requires_grad=True)
        w = RNG.standard_normal((3, 5))
        assert_grad_close(lambda: (F.softmax(x) * Tensor(w)).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((2, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()), atol=1e-10
        )

    def test_log_softmax_gradient(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        w = RNG.standard_normal((3, 4))
        assert_grad_close(lambda: (F.log_softmax(x) * Tensor(w)).sum(), [x])


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 1, 0])
        loss = F.cross_entropy(logits, targets)
        log_probs = F.log_softmax(logits).numpy()
        expected = -log_probs[np.arange(5), targets].mean()
        assert loss.item() == pytest.approx(expected)

    def test_gradient(self):
        logits = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        targets = np.array([0, 1, 2, 1])
        assert_grad_close(lambda: F.cross_entropy(logits, targets), [logits])

    def test_ignore_index(self):
        logits = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        targets = np.array([0, -100, 2, -100])
        loss = F.cross_entropy(logits, targets, ignore_index=-100)
        kept = F.cross_entropy(Tensor(logits.numpy()[[0, 2]]), targets[[0, 2]])
        assert loss.item() == pytest.approx(kept.item())

    def test_all_ignored_returns_zero(self):
        logits = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
        assert loss.item() == 0.0

    def test_sample_weights(self):
        logits = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        targets = np.array([0, 1, 0])
        weighted = F.cross_entropy(logits, targets, sample_weights=np.array([1.0, 0.0, 1.0]))
        subset = F.cross_entropy(Tensor(logits.numpy()[[0, 2]]), targets[[0, 2]])
        assert weighted.item() == pytest.approx(subset.item())

    def test_weighted_gradient(self):
        logits = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        targets = np.array([1, 3, 0])
        weights = np.array([0.2, 1.5, 0.7])
        assert_grad_close(
            lambda: F.cross_entropy(logits, targets, sample_weights=weights), [logits]
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2))


class TestOtherLosses:
    def test_nll_loss(self):
        logp = F.log_softmax(Tensor(RNG.standard_normal((4, 3)), requires_grad=True))
        targets = np.array([0, 1, 2, 0])
        loss = F.nll_loss(logp, targets)
        assert loss.item() > 0

    def test_bce_matches_naive(self):
        logits = Tensor(RNG.standard_normal(6), requires_grad=True)
        targets = (RNG.random(6) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits.numpy()))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(expected, abs=1e-8)

    def test_bce_gradient(self):
        logits = Tensor(RNG.standard_normal(5), requires_grad=True)
        targets = np.array([1.0, 0.0, 1.0, 1.0, 0.0])
        assert_grad_close(
            lambda: F.binary_cross_entropy_with_logits(logits, targets), [logits]
        )

    def test_bce_stable_for_extreme_logits(self):
        logits = Tensor(np.array([500.0, -500.0]))
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)


class TestDropoutAndGelu:
    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.standard_normal((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_zero_p_identity(self):
        x = Tensor(RNG.standard_normal((4, 4)))
        out = F.dropout(x, 0.0, training=True)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_dropout_p_one_rejected(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_gelu_values(self):
        x = Tensor(np.array([0.0, 1.0, -1.0]))
        out = F.gelu(x).numpy()
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)

    def test_gelu_gradient(self):
        x = Tensor(RNG.standard_normal(6), requires_grad=True)
        assert_grad_close(lambda: F.gelu(x).sum(), [x])


class TestEmbeddingAndMasking:
    def test_embedding_lookup_gradient_accumulates(self):
        w = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([1, 1, 4])
        F.embedding_lookup(w, idx).sum().backward()
        np.testing.assert_allclose(w.grad[1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(w.grad[4], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(w.grad[0], [0.0, 0.0, 0.0])

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 3)))
        mask = np.array([[True, False, False], [False, False, True]])
        out = F.masked_fill(x, mask, -9.0).numpy()
        assert out[0, 0] == -9.0 and out[1, 2] == -9.0
        assert out[0, 1] == 1.0

    def test_attention_scores_mask_shape(self):
        mask = np.zeros((2, 7), dtype=bool)
        assert F.attention_scores_mask(mask).shape == (2, 1, 1, 7)
