"""Tests for Module plumbing and core layers."""

import numpy as np
import pytest

from repro.autograd import (
    MLP, Dropout, DropoutPlan, Embedding, LayerNorm, Linear, Module, Parameter,
    Sequential, Tensor, dropout_plan, load_checkpoint, save_checkpoint,
)

from .gradcheck import assert_grad_close

RNG = np.random.default_rng(3)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 6, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((3, 4))))
        assert out.shape == (3, 6)

    def test_gradients(self):
        layer = Linear(3, 2, rng=RNG)
        x = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        assert_grad_close(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])

    def test_no_bias(self):
        layer = Linear(3, 2, rng=RNG, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_batched_3d_input(self):
        layer = Linear(4, 5, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((2, 3, 4))))
        assert out.shape == (2, 3, 5)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_padding_idx_zeroed(self):
        emb = Embedding(10, 4, rng=RNG, padding_idx=0)
        np.testing.assert_array_equal(emb.weight.numpy()[0], np.zeros(4))

    def test_gradient_flows_to_table(self):
        emb = Embedding(6, 3, rng=RNG)
        emb(np.array([2, 2, 5])).sum().backward()
        assert emb.weight.grad is not None
        np.testing.assert_allclose(emb.weight.grad[2], [2.0] * 3)


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(RNG.standard_normal((4, 8)) * 5 + 3)
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gradients(self):
        ln = LayerNorm(5)
        x = Tensor(RNG.standard_normal((2, 5)), requires_grad=True)
        w = Tensor(RNG.standard_normal((2, 5)))
        assert_grad_close(lambda: (ln(x) * w).sum(), [x, ln.gamma, ln.beta], atol=1e-4)


class TestDropoutModule:
    def test_respects_training_flag(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((50, 50)))
        drop.train()
        assert (drop(x).numpy() == 0).any()
        drop.eval()
        np.testing.assert_array_equal(drop(x).numpy(), x.numpy())

    def test_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_explicit_seed_reproducible(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        x = Tensor(np.ones((20, 8)))
        a = drop(x, seed=7).numpy()
        b = drop(x, seed=7).numpy()
        c = drop(x, seed=8).numpy()
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_plan_seeds_masks(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        x = Tensor(np.ones((10, 4)))
        with dropout_plan(DropoutPlan(base_seed=3, pass_seeds=(5,))):
            a = drop(x).numpy()
        with dropout_plan(DropoutPlan(base_seed=3, pass_seeds=(5,))):
            b = drop(x).numpy()
        with dropout_plan(DropoutPlan(base_seed=3, pass_seeds=(6,))):
            c = drop(x).numpy()
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_tiled_plan_matches_sequential_passes(self):
        # the key property behind vectorized MC-Dropout: one forward over a
        # batch tiled P times equals P sequential forwards, pass by pass
        drop = Dropout(0.3, rng=np.random.default_rng(0))
        drop.train()
        batch = np.ones((6, 5))
        seeds = (11, 12, 13)
        with dropout_plan(DropoutPlan(base_seed=1, pass_seeds=seeds)):
            tiled = drop(Tensor(np.tile(batch, (len(seeds), 1)))).numpy()
        for k, seed in enumerate(seeds):
            with dropout_plan(DropoutPlan(base_seed=1, pass_seeds=(seed,))):
                single = drop(Tensor(batch)).numpy()
            np.testing.assert_array_equal(tiled[k * 6:(k + 1) * 6], single)

    def test_plan_untileable_shape_falls_back(self):
        # shape not divisible by the tile count (e.g. shared prompt
        # embeddings of batch size 1) must still run, via the module rng
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        x = Tensor(np.ones((1, 4, 8)))
        with dropout_plan(DropoutPlan(base_seed=0, pass_seeds=(1, 2, 3))):
            out = drop(x)
        assert out.shape == (1, 4, 8)

    def test_plan_scoped_and_restored(self):
        from repro.autograd.layers import active_dropout_plan
        plan = DropoutPlan(base_seed=0, pass_seeds=(1,))
        assert active_dropout_plan() is None
        with dropout_plan(plan):
            assert active_dropout_plan() is plan
        assert active_dropout_plan() is None


class TestModulePlumbing:
    def _tiny(self):
        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(3, 4, rng=RNG)
                self.fc2 = Linear(4, 2, rng=RNG)
                self.scale = Parameter(np.ones(1))

            def forward(self, x):
                return self.fc2(self.fc1(x).relu()) * self.scale

        return Tiny()

    def test_named_parameters(self):
        model = self._tiny()
        names = {name for name, _ in model.named_parameters()}
        assert names == {"scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_num_parameters(self):
        model = self._tiny()
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_train_eval_recurses(self):
        model = self._tiny()
        model.eval()
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_state_dict_roundtrip(self):
        model = self._tiny()
        twin = self._tiny()
        twin.load_state_dict(model.state_dict())
        x = Tensor(RNG.standard_normal((2, 3)))
        np.testing.assert_allclose(model(x).numpy(), twin(x).numpy())

    def test_state_dict_strict_mismatch(self):
        model = self._tiny()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_state_dict_shape_mismatch(self):
        model = self._tiny()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((9, 9))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_clone_is_independent(self):
        model = self._tiny()
        twin = model.clone()
        twin.fc1.weight.data += 100.0
        assert not np.allclose(model.fc1.weight.numpy(), twin.fc1.weight.numpy())

    def test_zero_grad(self):
        model = self._tiny()
        model(Tensor(RNG.standard_normal((2, 3)))).sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None

    def test_checkpoint_roundtrip(self, tmp_path):
        model = self._tiny()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path, metadata={"epoch": 3})
        twin = self._tiny()
        meta = load_checkpoint(twin, path)
        assert meta == {"epoch": 3}
        x = Tensor(RNG.standard_normal((2, 3)))
        np.testing.assert_allclose(model(x).numpy(), twin(x).numpy())


class TestCompositeLayers:
    def test_sequential(self):
        seq = Sequential(Linear(3, 5, rng=RNG), Linear(5, 2, rng=RNG))
        assert seq(Tensor(RNG.standard_normal((4, 3)))).shape == (4, 2)
        assert len(list(seq.parameters())) == 4

    def test_mlp_forward_and_train(self):
        mlp = MLP(4, [8, 8], 2, rng=RNG, dropout=0.1)
        out = mlp(Tensor(RNG.standard_normal((6, 4))))
        assert out.shape == (6, 2)
        out.sum().backward()
        for p in mlp.parameters():
            assert p.grad is not None
