"""Tests for optimizers and the LR schedule."""

import numpy as np
import pytest

from repro.autograd import (
    SGD, Adam, AdamW, LinearWarmupSchedule, Linear, Parameter, Tensor, clip_grad_norm,
)

RNG = np.random.default_rng(13)


def quadratic_loss(param: Parameter) -> Tensor:
    return (param * param).sum()


class TestSGD:
    def test_single_step(self):
        p = Parameter(np.array([2.0]))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(p.numpy(), [2.0 - 0.1 * 4.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), [0.0, 0.0], atol=1e-4)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.numpy()[0] == pytest.approx(0.9)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), [0.0, 0.0], atol=1e-3)

    def test_skips_parameters_without_grad(self):
        p, q = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = Adam([p, q], lr=0.1)
        p.grad = np.ones(2)
        opt.step()
        np.testing.assert_array_equal(q.numpy(), np.ones(2))
        assert not np.array_equal(p.numpy(), np.ones(2))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([])


class TestAdamW:
    def test_decoupled_decay_applies_without_grad_scaling(self):
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.5, weight_decay=0.1)
        p.grad = np.zeros(1)
        opt.step()
        # Only the decoupled decay moves the weight: 1 - 0.5*0.1
        assert p.numpy()[0] == pytest.approx(0.95)

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[1.5], [-2.0]])
        x = rng.standard_normal((64, 2))
        y = x @ true_w
        layer = Linear(2, 1, rng=rng)
        opt = AdamW(layer.parameters(), lr=0.05, weight_decay=0.0)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.numpy(), true_w, atol=0.05)


class TestGradClip:
    def test_clips_large_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))

    def test_no_grads_returns_zero(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0


class TestSchedule:
    def test_warmup_then_decay(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = LinearWarmupSchedule(opt, warmup_steps=2, total_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert all(a >= b for a, b in zip(lrs[1:], lrs[2:]))

    def test_rejects_nonpositive_total(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            LinearWarmupSchedule(SGD([p], lr=1.0), 0, 0)
