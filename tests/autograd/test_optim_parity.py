"""Flat-buffer optimizer parity against the seed (looped) implementations.

The seed-style per-parameter loops live in ``benchmarks/bench_training.py``
(the same copies the training benchmark times against); these tests drive
both implementations over identical gradient streams and require agreement
to <= 1e-7 after 50 steps -- including decoupled weight decay, a warmup
schedule, gradient clipping and parameters whose grad stays ``None``.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_training import (  # noqa: E402
    LoopedAdamW, LoopedSGD, seed_clip_grad_norm,
)
from repro.autograd import (  # noqa: E402
    SGD, AdamW, LinearWarmupSchedule, Linear, Parameter, Sequential, Tensor,
    clip_grad_norm, load_checkpoint, save_checkpoint,
)

STEPS = 50
TOL = 1e-7


def small_model(seed: int):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 8, rng=rng), Linear(8, 2, rng=rng))


def batches(seed: int):
    rng = np.random.default_rng(seed + 100)
    x = rng.standard_normal((16, 6))
    y = rng.standard_normal((16, 2))
    return Tensor(x), Tensor(y)


def run_steps(model, optimizer, schedule=None, clip=None, flat=False):
    x, y = batches(0)
    for _ in range(STEPS):
        optimizer.zero_grad()
        loss = ((model(x) - y) ** 2).mean()
        loss.backward()
        if flat:
            optimizer.step(grad_clip=clip)
        else:
            if clip is not None:
                seed_clip_grad_norm(model.parameters(), clip)
            optimizer.step()
        if schedule is not None:
            schedule.step()


def assert_models_match(model_a, model_b, tol=TOL):
    for pa, pb in zip(model_a.parameters(), model_b.parameters()):
        np.testing.assert_allclose(pa.numpy(), pb.numpy(), atol=tol, rtol=0)


class TestAdamWParity:
    def test_matches_seed_loop_with_decay_and_warmup(self):
        ref, fast = small_model(3), small_model(3)
        ref_opt = LoopedAdamW(ref.parameters(), lr=1e-3, weight_decay=0.01)
        fast_opt = AdamW(fast.parameters(), lr=1e-3, weight_decay=0.01)
        run_steps(ref, ref_opt,
                  schedule=LinearWarmupSchedule(ref_opt, 5, STEPS))
        run_steps(fast, fast_opt,
                  schedule=LinearWarmupSchedule(fast_opt, 5, STEPS),
                  flat=True)
        assert_models_match(ref, fast)

    def test_matches_seed_loop_with_clipping(self):
        ref, fast = small_model(4), small_model(4)
        run_steps(ref, LoopedAdamW(ref.parameters(), lr=5e-3,
                                   weight_decay=0.05), clip=0.1)
        run_steps(fast, AdamW(fast.parameters(), lr=5e-3, weight_decay=0.05),
                  clip=0.1, flat=True)
        assert_models_match(ref, fast)

    def test_skips_grad_none_like_seed(self):
        ref, fast = small_model(5), small_model(5)
        extras = [Parameter(np.ones(3)), Parameter(np.ones(3))]
        ref_opt = LoopedAdamW(list(ref.parameters()) + [extras[0]], lr=1e-2)
        fast_opt = AdamW(list(fast.parameters()) + [extras[1]], lr=1e-2)
        run_steps(ref, ref_opt)  # extras never receive gradients
        run_steps(fast, fast_opt, flat=True)
        assert_models_match(ref, fast)
        np.testing.assert_array_equal(extras[1].numpy(), np.ones(3))


class TestSGDParity:
    def test_matches_seed_loop_with_momentum_and_decay(self):
        ref, fast = small_model(6), small_model(6)
        run_steps(ref, LoopedSGD(ref.parameters(), lr=0.05, momentum=0.9,
                                 weight_decay=0.01))
        run_steps(fast, SGD(fast.parameters(), lr=0.05, momentum=0.9,
                            weight_decay=0.01), flat=True)
        assert_models_match(ref, fast)


class TestClipGradNorm:
    def test_standalone_matches_seed_sum(self):
        params = [Parameter(np.zeros(5)) for _ in range(3)]
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal(5) for _ in range(3)]
        for p, g in zip(params, grads):
            p.grad = g.copy()
        norm = clip_grad_norm(params, max_norm=0.5)

        ref = [Parameter(np.zeros(5)) for _ in range(3)]
        for p, g in zip(ref, grads):
            p.grad = g.copy()
        ref_norm = seed_clip_grad_norm(ref, 0.5)

        assert norm == pytest.approx(ref_norm, abs=1e-12)
        for p, r in zip(params, ref):
            np.testing.assert_allclose(p.grad, r.grad, atol=1e-12)

    def test_handles_grad_none_param(self):
        with_grad = Parameter(np.zeros(4))
        with_grad.grad = np.full(4, 10.0)
        without_grad = Parameter(np.zeros(4))  # grad stays None
        norm = clip_grad_norm([with_grad, without_grad], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(with_grad.grad) == pytest.approx(1.0)
        assert without_grad.grad is None

    def test_accepts_generator_input(self):
        params = [Parameter(np.zeros(2)) for _ in range(2)]
        params[0].grad = np.array([3.0, 4.0])
        norm = clip_grad_norm((p for p in params), max_norm=100.0)
        assert norm == pytest.approx(5.0)


class TestStateDictRoundTrip:
    def _advance(self, model, optimizer, steps=7):
        x, y = batches(1)
        for _ in range(steps):
            optimizer.zero_grad()
            (((model(x) - y) ** 2).mean()).backward()
            optimizer.step()

    def test_adamw_state_survives_dict_round_trip(self):
        model = small_model(7)
        opt = AdamW(model.parameters(), lr=1e-3, weight_decay=0.01)
        self._advance(model, opt)
        state = opt.state_dict()

        twin_model = small_model(7)
        twin_model.load_state_dict(model.state_dict())
        twin = AdamW(twin_model.parameters(), lr=1e-3, weight_decay=0.01)
        twin.load_state_dict(state)

        self._advance(model, opt, steps=5)
        self._advance(twin_model, twin, steps=5)
        assert_models_match(model, twin_model, tol=0.0)

    def test_checkpoint_round_trip_via_npz(self, tmp_path):
        model = small_model(8)
        opt = AdamW(model.parameters(), lr=2e-3, weight_decay=0.02)
        self._advance(model, opt)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path, metadata={"step": 7}, optimizer=opt)

        twin_model = small_model(8)
        twin = AdamW(twin_model.parameters(), lr=99.0, weight_decay=0.02)
        metadata = load_checkpoint(twin_model, path, optimizer=twin)
        assert metadata == {"step": 7}
        assert twin.lr == pytest.approx(2e-3)

        self._advance(model, opt, steps=5)
        self._advance(twin_model, twin, steps=5)
        assert_models_match(model, twin_model, tol=0.0)

    def test_missing_optimizer_state_rejected(self, tmp_path):
        model = small_model(9)
        path = tmp_path / "no_optim.npz"
        save_checkpoint(model, path)
        with pytest.raises(ValueError):
            load_checkpoint(model, path,
                            optimizer=AdamW(model.parameters(), lr=1e-3))

    def test_flat_size_mismatch_rejected(self):
        model = small_model(10)
        opt = AdamW(model.parameters(), lr=1e-3)
        state = opt.state_dict()
        other = AdamW([Parameter(np.zeros(3))], lr=1e-3)
        with pytest.raises(ValueError):
            other.load_state_dict(state)
