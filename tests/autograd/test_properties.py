"""Hypothesis property tests on the autograd engine (float64 fixture)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, functional as F

ARRAYS = st.lists(st.floats(-10, 10, allow_nan=False), min_size=1,
                  max_size=12).map(lambda xs: np.array(xs, dtype=np.float64))


@settings(max_examples=50, deadline=None)
@given(xs=ARRAYS)
def test_property_softmax_is_distribution(xs):
    probs = F.softmax(Tensor(xs.reshape(1, -1))).numpy()
    assert probs.min() >= 0
    np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(xs=ARRAYS, shift=st.floats(-50, 50, allow_nan=False))
def test_property_softmax_shift_invariant(xs, shift):
    a = F.softmax(Tensor(xs.reshape(1, -1))).numpy()
    b = F.softmax(Tensor((xs + shift).reshape(1, -1))).numpy()
    np.testing.assert_allclose(a, b, atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(xs=ARRAYS)
def test_property_sum_linearity_of_gradients(xs):
    t = Tensor(xs, requires_grad=True)
    (t * 3.0 + 1.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(xs, 3.0))


@settings(max_examples=40, deadline=None)
@given(xs=ARRAYS, ys=ARRAYS)
def test_property_addition_commutes(xs, ys):
    n = min(len(xs), len(ys))
    a, b = Tensor(xs[:n]), Tensor(ys[:n])
    np.testing.assert_array_equal((a + b).numpy(), (b + a).numpy())


@settings(max_examples=40, deadline=None)
@given(xs=ARRAYS)
def test_property_double_backward_accumulates(xs):
    """Calling backward twice on fresh graphs doubles leaf gradients."""
    t = Tensor(xs, requires_grad=True)
    (t * 2.0).sum().backward()
    first = t.grad.copy()
    (t * 2.0).sum().backward()
    np.testing.assert_allclose(t.grad, 2 * first)


@settings(max_examples=40, deadline=None)
@given(xs=ARRAYS)
def test_property_relu_idempotent(xs):
    t = Tensor(xs)
    once = t.relu().numpy()
    twice = t.relu().relu().numpy()
    np.testing.assert_array_equal(once, twice)
    assert (once >= 0).all()


@settings(max_examples=30, deadline=None)
@given(xs=ARRAYS)
def test_property_cross_entropy_nonnegative(xs):
    n = len(xs)
    logits = Tensor(np.stack([xs, -xs], axis=1), requires_grad=True)
    labels = (xs > 0).astype(np.int64)
    loss = F.cross_entropy(logits, labels)
    assert loss.item() >= -1e-12
