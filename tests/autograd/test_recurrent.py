"""Tests for LSTM / BiLSTM."""

import numpy as np

from repro.autograd import BiLSTM, LSTM, LSTMCell, Tensor

from .gradcheck import assert_grad_close

RNG = np.random.default_rng(9)


class TestLSTMCell:
    def test_step_shapes(self):
        cell = LSTMCell(4, 6, rng=RNG)
        h = Tensor(np.zeros((3, 6)))
        c = Tensor(np.zeros((3, 6)))
        h2, c2 = cell(Tensor(RNG.standard_normal((3, 4))), (h, c))
        assert h2.shape == (3, 6) and c2.shape == (3, 6)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(4, 6, rng=RNG)
        np.testing.assert_array_equal(cell.bias.numpy()[6:12], np.ones(6))


class TestLSTM:
    def test_sequence_shape(self):
        lstm = LSTM(4, 6, rng=RNG)
        out = lstm(Tensor(RNG.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_reverse_direction_sees_future(self):
        lstm = LSTM(2, 3, rng=RNG, reverse=True)
        x = RNG.standard_normal((1, 4, 2))
        base = lstm(Tensor(x)).numpy()
        # Changing the last timestep must affect the first output in reverse mode.
        x2 = x.copy()
        x2[0, -1] += 5.0
        out = lstm(Tensor(x2)).numpy()
        assert not np.allclose(base[0, 0], out[0, 0])

    def test_forward_direction_is_causal(self):
        lstm = LSTM(2, 3, rng=RNG, reverse=False)
        x = RNG.standard_normal((1, 4, 2))
        base = lstm(Tensor(x)).numpy()
        x2 = x.copy()
        x2[0, -1] += 5.0
        out = lstm(Tensor(x2)).numpy()
        np.testing.assert_allclose(base[0, :3], out[0, :3], atol=1e-12)

    def test_gradients(self):
        lstm = LSTM(3, 2, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 3, 3)), requires_grad=True)
        assert_grad_close(lambda: (lstm(x) ** 2).sum(), [x, lstm.cell.w_ih], atol=1e-4)


class TestBiLSTM:
    def test_output_concatenates_directions(self):
        bi = BiLSTM(4, 5, rng=RNG)
        out = bi(Tensor(RNG.standard_normal((2, 6, 4))))
        assert out.shape == (2, 6, 10)
        assert bi.output_size == 10

    def test_gradients_reach_both_directions(self):
        bi = BiLSTM(3, 2, rng=RNG)
        x = Tensor(RNG.standard_normal((1, 4, 3)), requires_grad=True)
        (bi(x) ** 2).sum().backward()
        assert bi.forward_lstm.cell.w_ih.grad is not None
        assert bi.backward_lstm.cell.w_ih.grad is not None
