"""Gradient and semantics tests for the core Tensor operations."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, no_grad, stack, where

from .gradcheck import assert_grad_close

RNG = np.random.default_rng(7)


def randt(*shape, scale=1.0):
    return Tensor(RNG.standard_normal(shape) * scale, requires_grad=True)


class TestArithmetic:
    def test_add(self):
        a, b = randt(3, 4), randt(3, 4)
        assert_grad_close(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self):
        a, b = randt(3, 4), randt(4)
        assert_grad_close(lambda: (a + b).sum(), [a, b])

    def test_add_scalar(self):
        a = randt(3)
        assert_grad_close(lambda: (a + 2.5).sum(), [a])

    def test_sub(self):
        a, b = randt(2, 3), randt(2, 3)
        assert_grad_close(lambda: (a - b).sum(), [a, b])

    def test_rsub(self):
        a = randt(4)
        assert_grad_close(lambda: (1.0 - a).sum(), [a])

    def test_mul(self):
        a, b = randt(3, 4), randt(3, 4)
        assert_grad_close(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_row(self):
        a, b = randt(3, 4), randt(1, 4)
        assert_grad_close(lambda: (a * b).sum(), [a, b])

    def test_div(self):
        a, b = randt(3, 4), Tensor(RNG.random((3, 4)) + 1.0, requires_grad=True)
        assert_grad_close(lambda: (a / b).sum(), [a, b])

    def test_pow(self):
        a = Tensor(RNG.random((3, 4)) + 0.5, requires_grad=True)
        assert_grad_close(lambda: (a ** 3).sum(), [a])

    def test_neg(self):
        a = randt(5)
        assert_grad_close(lambda: (-a).sum(), [a])

    def test_chained_expression(self):
        a, b = randt(3, 3), randt(3, 3)
        assert_grad_close(lambda: ((a * b + a) / (b * b + 2.0)).sum(), [a, b])

    def test_reused_tensor_accumulates(self):
        a = randt(3)
        out = (a * a + a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 1, atol=1e-10)


class TestMatmul:
    def test_2d(self):
        a, b = randt(3, 4), randt(4, 5)
        assert_grad_close(lambda: (a @ b).sum(), [a, b])

    def test_batched(self):
        a, b = randt(2, 3, 4), randt(2, 4, 5)
        assert_grad_close(lambda: (a @ b).sum(), [a, b])

    def test_batched_broadcast(self):
        a, b = randt(2, 3, 4), randt(4, 5)
        assert_grad_close(lambda: (a @ b).sum(), [a, b])

    def test_4d(self):
        a, b = randt(2, 2, 3, 4), randt(2, 2, 4, 3)
        assert_grad_close(lambda: (a @ b).sum(), [a, b])

    def test_vector_vector(self):
        a, b = randt(4), randt(4)
        assert_grad_close(lambda: a @ b, [a, b])

    def test_matrix_vector(self):
        a, b = randt(3, 4), randt(4)
        assert_grad_close(lambda: (a @ b).sum(), [a, b])


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_unary(self, op):
        a = randt(3, 4)
        assert_grad_close(lambda: getattr(a, op)().sum(), [a])

    def test_log(self):
        a = Tensor(RNG.random((3, 4)) + 0.5, requires_grad=True)
        assert_grad_close(lambda: a.log().sum(), [a])

    def test_sqrt(self):
        a = Tensor(RNG.random((3, 4)) + 0.5, requires_grad=True)
        assert_grad_close(lambda: a.sqrt().sum(), [a])

    def test_clip_interior(self):
        a = Tensor(np.array([0.2, 0.5, 0.7]), requires_grad=True)
        assert_grad_close(lambda: a.clip(0.0, 1.0).sum(), [a])

    def test_clip_blocks_gradient_outside(self):
        a = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        a = randt(3, 4)
        assert_grad_close(lambda: a.sum(), [a])

    def test_sum_axis(self):
        a = randt(3, 4)
        assert_grad_close(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self):
        a = randt(3, 4)
        assert_grad_close(lambda: (a.sum(axis=1, keepdims=True) * a).sum(), [a])

    def test_mean(self):
        a = randt(3, 4)
        assert_grad_close(lambda: (a.mean(axis=-1) ** 2).sum(), [a])

    def test_var(self):
        a = randt(3, 4)
        assert_grad_close(lambda: a.var(axis=-1).sum(), [a], atol=1e-4)

    def test_max_axis(self):
        a = Tensor(RNG.permutation(12).astype(float).reshape(3, 4), requires_grad=True)
        assert_grad_close(lambda: a.max(axis=1).sum(), [a])

    def test_max_global(self):
        a = Tensor(RNG.permutation(6).astype(float), requires_grad=True)
        assert_grad_close(lambda: a.max(), [a])


class TestShapeOps:
    def test_reshape(self):
        a = randt(3, 4)
        assert_grad_close(lambda: (a.reshape(2, 6) ** 2).sum(), [a])

    def test_transpose_default(self):
        a = randt(3, 4)
        assert_grad_close(lambda: (a.T ** 2).sum(), [a])

    def test_transpose_axes(self):
        a = randt(2, 3, 4)
        assert_grad_close(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_swapaxes(self):
        a = randt(2, 3, 4)
        assert_grad_close(lambda: (a.swapaxes(1, 2) ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = randt(4, 5)
        assert_grad_close(lambda: (a[1:3, :2] ** 2).sum(), [a])

    def test_getitem_int_array(self):
        a = randt(6, 3)
        idx = np.array([0, 2, 2, 5])
        assert_grad_close(lambda: (a[idx] ** 2).sum(), [a])

    def test_getitem_repeated_index_accumulates(self):
        a = randt(3, 2)
        out = a[np.array([1, 1, 1])].sum()
        out.backward()
        np.testing.assert_allclose(a.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(a.grad[0], [0.0, 0.0])


class TestCombinators:
    def test_concatenate(self):
        a, b = randt(2, 3), randt(4, 3)
        assert_grad_close(lambda: (concatenate([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concatenate_last_axis(self):
        a, b = randt(2, 3), randt(2, 5)
        assert_grad_close(lambda: (concatenate([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a, b = randt(3, 2), randt(3, 2)
        assert_grad_close(lambda: (stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_where(self):
        a, b = randt(3, 4), randt(3, 4)
        cond = RNG.random((3, 4)) > 0.5
        assert_grad_close(lambda: (where(cond, a, b) ** 2).sum(), [a, b])


class TestGraphSemantics:
    def test_no_grad_blocks_graph(self):
        a = randt(3)
        with no_grad():
            out = (a * 2).sum()
        assert not out.requires_grad

    def test_detach(self):
        a = randt(3)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data

    def test_backward_non_scalar_raises(self):
        a = randt(3)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_without_grad_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_diamond_graph(self):
        a = randt(3)
        b = a * 2
        out = (b * a + b).sum()
        out.backward()
        # d/da [2a^2 + 2a] = 4a + 2
        np.testing.assert_allclose(a.grad, 4 * a.data + 2, atol=1e-10)

    def test_deep_chain_iterative_toposort(self):
        # 3000-deep chain would blow a recursive traversal.
        a = randt(2)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_zero_grad(self):
        a = randt(3)
        a.sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_item_and_numpy(self):
        t = Tensor(np.array([[2.0]]))
        assert t.item() == 2.0
        assert t.numpy().shape == (1, 1)
