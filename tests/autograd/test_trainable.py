"""The ``trainable`` switch: frozen parameters in forward/backward and
their exclusion from optimizer state (the PEFT substrate)."""

import numpy as np
import pytest

from repro.autograd import AdamW, Linear, Module, SGD, Tensor
from repro.autograd import functional as F
from repro.autograd.module import Parameter


class TwoLayer(Module):
    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.first = Linear(4, 8, rng=rng)
        self.second = Linear(8, 2, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.second(F.gelu(self.first(x)))


def loss_of(model, x):
    out = model(Tensor(x))
    return (out * out).sum()


def test_parameter_trainable_default_and_freeze():
    param = Parameter(np.ones((3, 2)))
    assert param.trainable and param.requires_grad
    param.freeze_()
    assert not param.trainable and not param.requires_grad
    param.unfreeze_()
    assert param.trainable and param.requires_grad


def test_module_freeze_is_recursive_and_countable():
    model = TwoLayer()
    total = model.num_parameters()
    assert model.num_trainable_parameters() == total
    model.freeze()
    assert model.num_trainable_parameters() == 0
    assert [name for name, _ in model.named_trainable_parameters()] == []
    model.second.unfreeze()
    names = [name for name, _ in model.named_trainable_parameters()]
    assert names == ["second.weight", "second.bias"]
    assert 0 < model.num_trainable_parameters() < total


def test_gradients_flow_through_frozen_layers():
    """Freezing the first layer must not cut the graph: the second
    layer's gradients are identical either way, and the frozen layer
    accumulates nothing."""
    x = np.random.default_rng(0).standard_normal((5, 4))

    reference = TwoLayer()
    loss_of(reference, x).backward()
    want = {name: p.grad.copy()
            for name, p in reference.named_parameters()
            if name.startswith("second")}

    frozen = TwoLayer()
    frozen.first.freeze()
    loss_of(frozen, x).backward()
    for name, param in frozen.named_parameters():
        if name.startswith("second"):
            assert np.allclose(param.grad, want[name])
        else:
            assert param.grad is None


def test_optimizer_filters_frozen_parameters():
    model = TwoLayer()
    model.first.freeze()
    optimizer = AdamW(model.parameters(), lr=0.1)
    first_before = {name: p.data.copy()
                    for name, p in model.first.named_parameters()}
    second_before = {name: p.data.copy()
                     for name, p in model.second.named_parameters()}

    x = np.random.default_rng(1).standard_normal((5, 4))
    loss_of(model, x).backward()
    optimizer.step()

    for name, param in model.first.named_parameters():
        assert np.array_equal(param.data, first_before[name])
    moved = [name for name, param in model.second.named_parameters()
             if not np.array_equal(param.data, second_before[name])]
    assert moved  # the trainable layer actually stepped


def test_optimizer_state_sized_to_trainable_slots():
    model = TwoLayer()
    model.freeze()
    model.second.unfreeze()
    optimizer = AdamW(model.parameters(), lr=0.1)
    assert len(optimizer.parameters) == 2  # weight + bias of `second` only
    flat = sum(p.size for p in optimizer.parameters)
    assert flat == model.num_trainable_parameters()


@pytest.mark.parametrize("factory", [AdamW, SGD])
def test_all_frozen_is_a_loud_error(factory):
    model = TwoLayer()
    model.freeze()
    with pytest.raises(ValueError, match="no trainable parameters"):
        factory(model.parameters(), lr=0.1)


def test_empty_parameter_list_still_errors():
    with pytest.raises(ValueError, match="no parameters"):
        AdamW([], lr=0.1)
