"""Tests for attention and the transformer encoder stack."""

import numpy as np

from repro.autograd import (
    MultiHeadAttention, Tensor, TransformerEncoder, TransformerEncoderLayer,
)

from .gradcheck import assert_grad_close

RNG = np.random.default_rng(5)


def make_input(batch=2, seq=5, d=8):
    return Tensor(RNG.standard_normal((batch, seq, d)), requires_grad=True)


class TestMultiHeadAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(8, 2, rng=RNG, dropout=0.0)
        x = make_input()
        assert attn(x).shape == (2, 5, 8)

    def test_rejects_indivisible_heads(self):
        import pytest

        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2)

    def test_padding_is_ignored(self):
        attn = MultiHeadAttention(8, 2, rng=RNG, dropout=0.0)
        attn.eval()
        x = Tensor(RNG.standard_normal((1, 4, 8)))
        mask = np.array([[False, False, True, True]])
        base = attn(x, pad_mask=mask).numpy()
        # Perturb the padded positions: non-padded outputs must not change.
        perturbed = x.numpy().copy()
        perturbed[0, 2:] += 10.0
        out = attn(Tensor(perturbed), pad_mask=mask).numpy()
        np.testing.assert_allclose(base[0, :2], out[0, :2], atol=1e-10)

    def test_gradients_flow(self):
        attn = MultiHeadAttention(4, 2, rng=RNG, dropout=0.0)
        attn.eval()
        x = make_input(1, 3, 4)
        assert_grad_close(lambda: (attn(x) ** 2).sum(), [x], atol=1e-4)


class TestTransformerEncoder:
    def test_layer_shape(self):
        layer = TransformerEncoderLayer(8, 2, 16, rng=RNG, dropout=0.0)
        assert layer(make_input()).shape == (2, 5, 8)

    def test_stack_shape_and_param_count(self):
        enc = TransformerEncoder(3, 8, 2, 16, rng=RNG, dropout=0.0)
        assert enc(make_input()).shape == (2, 5, 8)
        per_layer = TransformerEncoderLayer(8, 2, 16, rng=RNG).num_parameters()
        assert enc.num_parameters() == 3 * per_layer

    def test_gradients_reach_all_parameters(self):
        enc = TransformerEncoder(2, 8, 2, 16, rng=RNG, dropout=0.0)
        x = make_input()
        (enc(x) ** 2).sum().backward()
        for name, p in enc.named_parameters():
            assert p.grad is not None, f"no grad for {name}"

    def test_deterministic_in_eval(self):
        enc = TransformerEncoder(2, 8, 2, 16, rng=RNG, dropout=0.3)
        enc.eval()
        x = make_input()
        np.testing.assert_array_equal(enc(x).numpy(), enc(x).numpy())

    def test_stochastic_in_train(self):
        enc = TransformerEncoder(2, 8, 2, 16, rng=RNG, dropout=0.3)
        enc.train()
        x = make_input()
        a = enc(x).numpy()
        b = enc(x).numpy()
        assert not np.allclose(a, b)
