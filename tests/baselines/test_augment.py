"""Tests for the Ditto/Rotom augmentation operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.augment import (
    ALL_OPERATORS, Augmenter, del_attr, del_span, shuffle_attrs,
    shuffle_span, swap_entities,
)

LEFT = "[COL] title [VAL] efficient similarity search [COL] year [VAL] 2003"
RIGHT = "[COL] name [VAL] fast similarity join [COL] when [VAL] 2004"


def rng():
    return np.random.default_rng(0)


class TestOperators:
    def test_del_span_removes_tokens(self):
        l2, r2 = del_span(rng(), LEFT, RIGHT)
        assert len((l2 + r2).split()) <= len((LEFT + RIGHT).split())

    def test_shuffle_span_preserves_multiset(self):
        l2, r2 = shuffle_span(rng(), LEFT, RIGHT)
        assert sorted((l2 + " " + r2).split()) == sorted((LEFT + " " + RIGHT).split())

    def test_del_attr_drops_whole_chunk(self):
        l2, r2 = del_attr(rng(), LEFT, RIGHT)
        changed = l2 if l2 != LEFT else r2
        assert changed.count("[COL]") == 1

    def test_del_attr_single_attribute_untouched(self):
        one = "[COL] a [VAL] b"
        l2, r2 = del_attr(rng(), one, one)
        assert l2 == one and r2 == one

    def test_shuffle_attrs_preserves_chunks(self):
        l2, r2 = shuffle_attrs(rng(), LEFT, RIGHT)
        for text, original in ((l2, LEFT), (r2, RIGHT)):
            assert text.count("[COL]") == original.count("[COL]")
            assert sorted(text.split()) == sorted(original.split())

    def test_swap_entities(self):
        l2, r2 = swap_entities(rng(), LEFT, RIGHT)
        assert (l2, r2) == (RIGHT, LEFT)

    @settings(max_examples=30)
    @given(st.sampled_from(ALL_OPERATORS),
           st.text(alphabet="ab [COL]VAL", min_size=1, max_size=40))
    def test_property_operators_never_crash(self, op, text):
        l2, r2 = op(np.random.default_rng(1), text, text)
        assert isinstance(l2, str) and isinstance(r2, str)


class TestAugmenter:
    def test_probability_zero_is_identity(self):
        aug = Augmenter(p=0.0, seed=0)
        assert aug(LEFT, RIGHT) == (LEFT, RIGHT)

    def test_probability_one_changes_often(self):
        aug = Augmenter(p=1.0, seed=0)
        changed = sum(aug(LEFT, RIGHT) != (LEFT, RIGHT) for _ in range(20))
        assert changed >= 15

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Augmenter(p=1.5)

    def test_empty_operator_pool_rejected(self):
        with pytest.raises(ValueError):
            Augmenter(operators=[])

    def test_deterministic_with_seed(self):
        a = Augmenter(p=1.0, seed=42)
        b = Augmenter(p=1.0, seed=42)
        for _ in range(5):
            assert a(LEFT, RIGHT) == b(LEFT, RIGHT)
