"""Tests for the DeepMatcher baseline."""

import numpy as np
import pytest

from repro.baselines.deepmatcher import DeepMatcher, flatten_record
from repro.data import EntityRecord, load_dataset


class TestFlattenRecord:
    def test_strips_structure_tags(self):
        rec = EntityRecord("r", "relational", {"title": "fast join", "year": 2004})
        flat = flatten_record(rec)
        assert "[COL]" not in flat and "[VAL]" not in flat
        assert "fast" in flat and "join" in flat

    def test_text_record(self):
        rec = EntityRecord.text_record("t", "some description")
        assert flatten_record(rec) == "some description"


class TestDeepMatcher:
    @pytest.fixture(scope="class")
    def view(self):
        return load_dataset("REL-HETER").low_resource(seed=0)

    def test_fit_predict_shapes(self, view):
        matcher = DeepMatcher(epochs=4, max_len=32, seed=0).fit(view)
        preds = matcher.predict(view.test)
        assert preds.shape == (len(view.test),)
        assert set(np.unique(preds)) <= {0, 1}

    def test_predict_before_fit_rejected(self, view):
        with pytest.raises(RuntimeError):
            DeepMatcher().predict(view.test)

    def test_vocab_built_from_training_data(self, view):
        matcher = DeepMatcher(epochs=1, max_len=32).fit(view)
        vocab = matcher.model.vocab
        some_word = flatten_record(view.labeled[0].left).split()[0]
        assert some_word in vocab
