"""Mechanics tests for the LM-backed baselines (tiny backbone, few epochs)."""

import numpy as np
import pytest

from repro.baselines import (
    BertMatcher, Dader, Ditto, Rotom, SentenceBert, inject_domain_knowledge,
    make_baseline, BASELINE_NAMES,
)
from repro.data import load_dataset
from repro.lm import load_pretrained


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="module")
def view():
    return load_dataset("REL-HETER").low_resource(seed=0)


class TestRegistry:
    def test_all_eight_present(self):
        assert len(BASELINE_NAMES) == 8

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_baseline("GPT-7")

    def test_factory_builds(self):
        matcher = make_baseline("DeepMatcher", epochs=1)
        assert matcher.name == "DeepMatcher"


class TestDomainKnowledge:
    def test_numbers_tagged(self):
        assert inject_domain_knowledge("year 2003") == "year num 2003"

    def test_words_untouched(self):
        assert inject_domain_knowledge("no digits here") == "no digits here"


@pytest.mark.parametrize("cls,kwargs", [
    (BertMatcher, {}),
    (SentenceBert, {}),
    (Ditto, {}),
    (Rotom, {"augmentations_per_example": 1}),
])
class TestLMBaselines:
    def test_fit_predict(self, cls, kwargs, backbone, view):
        lm, tok = backbone
        matcher = cls(epochs=2, batch_size=8, max_len=64, lm=lm,
                      tokenizer=tok, **kwargs)
        matcher.fit(view)
        preds = matcher.predict(view.test[:10])
        assert preds.shape == (10,)
        assert set(np.unique(preds)) <= {0, 1}

    def test_predict_before_fit(self, cls, kwargs, backbone, view):
        lm, tok = backbone
        matcher = cls(lm=lm, tokenizer=tok, **kwargs)
        with pytest.raises(RuntimeError):
            matcher.predict(view.test)


class TestDader:
    def test_fit_predict_with_source(self, backbone, view):
        lm, tok = backbone
        matcher = Dader(epochs=2, batch_size=8, max_len=64, source_cap=16,
                        lm=lm, tokenizer=tok)
        matcher.fit(view)
        preds = matcher.predict(view.test[:10])
        assert preds.shape == (10,)

    def test_source_mapping_covers_all_datasets(self):
        from repro.baselines import SOURCE_FOR
        from repro.data import DATASET_NAMES

        assert set(SOURCE_FOR) == set(DATASET_NAMES)
        for target, source in SOURCE_FOR.items():
            assert source != target

    def test_unknown_target_rejected(self, backbone):
        lm, tok = backbone
        matcher = Dader(lm=lm, tokenizer=tok)
        with pytest.raises(KeyError):
            matcher._source_pairs("MYSTERY-DATASET")
