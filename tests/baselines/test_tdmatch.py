"""Tests for TDmatch / TDmatch* (graph, walks, embeddings, matching)."""

import numpy as np
import pytest

from repro.baselines.tdmatch import (
    TDmatch, TDmatchConfig, TDmatchEmbedder, TDmatchStar, record_key,
)
from repro.data import load_dataset


@pytest.fixture(scope="module")
def view():
    return load_dataset("REL-HETER").low_resource(seed=0)


@pytest.fixture(scope="module")
def fast_config():
    return TDmatchConfig(num_walks=6, walk_length=10, dimensions=24, seed=0)


class TestEmbedder:
    def test_graph_is_bipartite_records_tokens(self, view, fast_config):
        from repro.baselines.tdmatch import _collect_records

        embedder = TDmatchEmbedder(fast_config)
        records = _collect_records(view.labeled[:10])
        graph = embedder.build_graph(records)
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"record", "token"}
        for a, b in graph.edges():
            ka = graph.nodes[a]["kind"]
            kb = graph.nodes[b]["kind"]
            assert {ka, kb} == {"record", "token"}

    def test_embeddings_are_unit_norm(self, view, fast_config):
        from repro.baselines.tdmatch import _collect_records

        embedder = TDmatchEmbedder(fast_config).fit(
            _collect_records(view.labeled[:20]))
        for vec in embedder.embeddings.values():
            assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-6)

    def test_walk_cost_scales_with_input(self, view, fast_config):
        """The scalability pathology of Table 4: more records => superlinear
        walk steps and a quadratically larger co-occurrence matrix."""
        from repro.baselines.tdmatch import _collect_records

        small = TDmatchEmbedder(fast_config).fit(
            _collect_records(view.labeled[:8]))
        large = TDmatchEmbedder(fast_config).fit(
            _collect_records(view.labeled[:40]))
        assert large.walk_steps > small.walk_steps
        assert large.matrix_bytes > 1.5 * small.matrix_bytes


class TestTDmatch:
    def test_unsupervised_fit_predict(self, view, fast_config):
        matcher = TDmatch(fast_config).fit(view)
        preds = matcher.predict(view.test)
        assert preds.shape == (len(view.test),)
        assert set(np.unique(preds)) <= {0, 1}

    def test_beats_random_on_rel_heter(self, view, fast_config):
        matcher = TDmatch(fast_config).fit(view)
        prf = matcher.evaluate(view.test)
        assert prf.f1 > 40.0

    def test_predict_before_fit_rejected(self, view, fast_config):
        with pytest.raises(RuntimeError):
            TDmatch(fast_config).predict(view.test)

    def test_record_key_distinguishes_sides(self, view):
        pair = view.labeled[0]
        assert record_key(pair.left, "L") != record_key(pair.left, "R")


class TestTDmatchStar:
    def test_supervised_head_trains(self, view, fast_config):
        matcher = TDmatchStar(fast_config, epochs=20).fit(view)
        prf = matcher.evaluate(view.test)
        assert 0.0 <= prf.f1 <= 100.0

    def test_predict_before_fit_rejected(self, view, fast_config):
        with pytest.raises(RuntimeError):
            TDmatchStar(fast_config).predict(view.test)
