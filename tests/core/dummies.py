"""Fast toy models and datasets for exercising the core machinery.

The LST / uncertainty / pruning logic is model-agnostic; testing it against
a tiny bag-of-tokens logistic model keeps the suite fast while covering the
same code paths the MiniLM-backed pipeline uses.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence

import numpy as np

from repro.autograd import Dropout, Linear, Module, Tensor, functional as F
from repro.data.dataset import CandidatePair, GEMDataset, split_pairs
from repro.data.records import EntityRecord, Table
from repro.data.serialize import serialize


def _hash_features(text: str, dim: int) -> np.ndarray:
    # crc32, not hash(): PYTHONHASHSEED varies per process and made the
    # toy features -- and every accuracy threshold built on them -- flaky.
    vec = np.zeros(dim)
    for token in text.split():
        vec[zlib.crc32(token.encode()) % dim] += 1.0
    return vec


class ToyPairModel(Module):
    """Logistic model over hashed token-overlap features, with dropout.

    Dropout makes it compatible with MC-Dropout and MC-EL2N, which require
    stochastic forward passes in train mode.
    """

    def __init__(self, dim: int = 32, dropout: float = 0.2, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.fc = Linear(3, 2, rng=rng)
        self.drop = Dropout(dropout, rng=np.random.default_rng(seed + 1))

    def _features(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        rows = []
        for pair in pairs:
            u = _hash_features(serialize(pair.left), self.dim)
            v = _hash_features(serialize(pair.right), self.dim)
            nu, nv = np.linalg.norm(u), np.linalg.norm(v)
            cos = float(u @ v / (nu * nv)) if nu and nv else 0.0
            overlap = float(np.minimum(u, v).sum() / max(u.sum(), 1.0))
            rows.append([cos, overlap, 1.0])
        return np.asarray(rows)

    def _logits(self, pairs: Sequence[CandidatePair]) -> Tensor:
        feats = Tensor(self._features(pairs))
        return self.fc(self.drop(feats))

    def forward(self, pairs: Sequence[CandidatePair]) -> Tensor:
        return F.softmax(self._logits(pairs), axis=-1)

    def loss(self, pairs, labels, sample_weights=None) -> Tensor:
        return F.cross_entropy(self._logits(pairs),
                               np.asarray(labels, dtype=np.int64),
                               sample_weights=sample_weights)


def toy_pairs(n: int = 120, seed: int = 0, noise: float = 0.1) -> List[CandidatePair]:
    """Separable candidate pairs: positives share most tokens."""
    rng = np.random.default_rng(seed)
    words = [f"w{i}" for i in range(40)]
    pairs = []
    for i in range(n):
        base = list(rng.choice(words, size=6, replace=False))
        left = EntityRecord(f"l{i}", "relational", {"name": " ".join(base)})
        positive = i % 2 == 0
        if positive:
            text = list(base)
            if rng.random() < noise:
                text[0] = str(rng.choice(words))
        else:
            text = list(rng.choice(words, size=6, replace=False))
        right = EntityRecord(f"r{i}", "relational", {"title": " ".join(text)})
        pairs.append(CandidatePair(left, right, int(positive)))
    return pairs


def toy_view(n: int = 160, labeled: int = 24, seed: int = 0):
    """A LowResourceView over toy pairs."""
    pairs = toy_pairs(n, seed=seed)
    train, valid, test = split_pairs(pairs, seed=seed)
    left = Table("L", "relational", [p.left for p in pairs])
    right = Table("R", "relational", [p.right for p in pairs])
    ds = GEMDataset(name="toy", domain="toy", left_table=left,
                    right_table=right, train=train, valid=valid, test=test)
    return ds.low_resource_count(labeled, seed=seed)
