"""Tests for the active-learning loop (toy model)."""

import numpy as np
import pytest

from repro.core.active import (
    ActiveLearner, ActiveLearningConfig, oracle_from_view,
)

from .dummies import ToyPairModel, toy_view


def make_config(**overrides):
    defaults = dict(rounds=2, queries_per_round=6, mc_passes=3,
                    epochs_per_round=8, batch_size=16, lr=0.05, seed=0)
    defaults.update(overrides)
    return ActiveLearningConfig(**defaults)


@pytest.fixture(scope="module")
def view():
    return toy_view(n=160, labeled=10, seed=9)


class TestConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ActiveLearningConfig(strategy="psychic")

    def test_positive_budget_required(self):
        with pytest.raises(ValueError):
            ActiveLearningConfig(rounds=0)


class TestOracle:
    def test_answers_from_held_back_labels(self, view):
        oracle = oracle_from_view(view)
        pair = view.unlabeled[0]
        assert oracle(pair) == view.unlabeled_true_labels[0]

    def test_unknown_pair_rejected(self, view):
        oracle = oracle_from_view(view)
        with pytest.raises(KeyError):
            oracle(view.labeled[0])


class TestActiveLearner:
    @pytest.mark.parametrize("strategy", ["uncertainty", "margin", "random"])
    def test_loop_spends_budget(self, view, strategy):
        learner = ActiveLearner(lambda: ToyPairModel(dropout=0.2),
                                make_config(strategy=strategy))
        model, report = learner.run(view.labeled, view.unlabeled,
                                    oracle_from_view(view), view.valid)
        assert report.labels_used == [10, 16, 22]
        assert len(report.valid_f1) == 3
        assert len(report.queried_indices) == 2

    def test_pool_exhaustion_stops_early(self, view):
        learner = ActiveLearner(lambda: ToyPairModel(dropout=0.2),
                                make_config(rounds=5, queries_per_round=4))
        model, report = learner.run(view.labeled, view.unlabeled[:6],
                                    oracle_from_view(view), view.valid)
        # 6-sample pool supports at most two rounds (4 + 2 queries).
        assert report.labels_used[-1] == 10 + 6
        assert len(report.queried_indices) <= 2

    def test_labels_improve_f1_on_separable_task(self, view):
        learner = ActiveLearner(lambda: ToyPairModel(dropout=0.2),
                                make_config(rounds=3, queries_per_round=12))
        _, report = learner.run(view.labeled, view.unlabeled,
                                oracle_from_view(view), view.valid)
        assert max(report.valid_f1[1:]) >= report.valid_f1[0] - 0.05
