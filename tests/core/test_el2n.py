"""Tests for EL2N / MC-EL2N scores and dynamic data pruning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.el2n import (
    el2n_scores, mc_el2n_scores, prune_dataset, select_prunable,
)
from repro.core.trainer import Trainer, TrainerConfig

from .dummies import ToyPairModel, toy_view


class TestEl2nScores:
    def test_perfect_prediction_scores_zero(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        scores = el2n_scores(probs, np.array([0, 1]))
        np.testing.assert_allclose(scores, [0.0, 0.0])

    def test_wrong_prediction_scores_high(self):
        probs = np.array([[1.0, 0.0]])
        assert el2n_scores(probs, np.array([1]))[0] == pytest.approx(np.sqrt(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            el2n_scores(np.zeros((3, 2)), np.zeros(2))

    @given(st.integers(1, 20))
    def test_property_scores_bounded(self, n):
        rng = np.random.default_rng(n)
        raw = rng.random((n, 2))
        probs = raw / raw.sum(axis=1, keepdims=True)
        labels = rng.integers(0, 2, size=n)
        scores = el2n_scores(probs, labels)
        assert (scores >= 0).all() and (scores <= np.sqrt(2) + 1e-9).all()


class TestSelectPrunable:
    def test_picks_lowest(self):
        scores = np.array([0.9, 0.1, 0.5, 0.05])
        picked = select_prunable(scores, 0.5)
        assert sorted(picked.tolist()) == [1, 3]

    def test_zero_ratio_prunes_nothing(self):
        assert select_prunable(np.ones(10), 0.0).size == 0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            select_prunable(np.ones(3), 1.0)


class TestMcEl2n:
    def test_averages_passes(self):
        view = toy_view(n=80, labeled=20, seed=3)
        model = ToyPairModel(dropout=0.3)
        labels = np.array([p.label for p in view.labeled])
        scores = mc_el2n_scores(model, view.labeled, labels, passes=5)
        assert scores.shape == (len(view.labeled),)
        assert (scores >= 0).all()

    def test_requires_positive_passes(self):
        view = toy_view(n=40, labeled=10, seed=3)
        labels = np.array([p.label for p in view.labeled])
        with pytest.raises(ValueError):
            mc_el2n_scores(ToyPairModel(), view.labeled, labels, passes=0)

    def test_empty_input(self):
        assert mc_el2n_scores(ToyPairModel(), [], np.zeros(0)).size == 0

    def test_easy_samples_score_lower_after_training(self):
        view = toy_view(n=160, labeled=40, seed=4)
        model = ToyPairModel(dropout=0.1, seed=0)
        Trainer(model, TrainerConfig(epochs=25, lr=0.05)).fit(view.labeled)
        labels = np.array([p.label for p in view.labeled])
        scores = mc_el2n_scores(model, view.labeled, labels, passes=6)
        # A trained model fits most of the separable data: median score low.
        assert np.median(scores) < 0.5


class TestPruneDataset:
    def test_prunes_requested_fraction(self):
        view = toy_view(n=120, labeled=40, seed=5)
        model = ToyPairModel(dropout=0.2)
        kept = prune_dataset(model, list(view.labeled), ratio=0.25, passes=3)
        assert len(kept) == len(view.labeled) - int(round(len(view.labeled) * 0.25))

    def test_never_below_min_remaining(self):
        view = toy_view(n=40, labeled=6, seed=5)
        model = ToyPairModel()
        kept = prune_dataset(model, list(view.labeled), ratio=0.9, passes=3,
                             min_remaining=4)
        assert len(kept) >= 4

    def test_small_sets_untouched(self):
        view = toy_view(n=40, labeled=4, seed=5)
        model = ToyPairModel()
        pairs = list(view.labeled)[:3]
        assert prune_dataset(model, pairs, ratio=0.5, passes=3) is pairs

    def test_both_classes_survive(self):
        view = toy_view(n=120, labeled=30, seed=6)
        model = ToyPairModel(dropout=0.2)
        kept = prune_dataset(model, list(view.labeled), ratio=0.6, passes=3)
        assert {p.label for p in kept} == {0, 1}
