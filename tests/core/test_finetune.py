"""Tests for the vanilla fine-tuning classifier."""

import numpy as np
import pytest

from repro.baselines.augment import Augmenter
from repro.core.finetune import SequenceClassifier
from repro.data import load_dataset
from repro.lm import load_pretrained


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="module")
def pairs():
    return load_dataset("REL-HETER").test[:6]


class TestSequenceClassifier:
    def test_forward_shape_and_normalization(self, backbone, pairs):
        lm, tok = backbone
        model = SequenceClassifier(lm, tok, max_len=64)
        model.eval()
        probs = model(pairs)
        assert probs.shape == (len(pairs), 2)
        np.testing.assert_allclose(probs.numpy().sum(axis=1), 1.0, atol=1e-5)

    def test_loss_backward_reaches_head_and_lm(self, backbone, pairs):
        lm, tok = backbone
        model = SequenceClassifier(lm, tok, max_len=64)
        labels = np.array([p.label for p in pairs])
        model.loss(pairs, labels).backward()
        assert model.head.weight.grad is not None
        assert model.lm.token_embedding.weight.grad is not None
        model.zero_grad()

    def test_max_len_clamped_to_lm(self, backbone):
        lm, tok = backbone
        model = SequenceClassifier(lm, tok, max_len=10_000)
        assert model.max_len == lm.config.max_len

    def test_augmenter_only_in_training(self, backbone, pairs):
        lm, tok = backbone
        calls = []

        class SpyAugmenter(Augmenter):
            def __call__(self, left, right):
                calls.append(1)
                return left, right

        model = SequenceClassifier(lm, tok, max_len=64,
                                   augmenter=SpyAugmenter(p=1.0))
        model.eval()
        model(pairs)
        assert not calls
        model.train()
        model(pairs)
        assert calls
