"""Paper claim: "LST is general enough to incorporate with other
approaches" -- Algorithm 1 must work with any model factory, not just
PromptModel."""

import numpy as np
import pytest

from repro.core.self_training import LightweightSelfTrainer, SelfTrainingConfig
from repro.core.finetune import SequenceClassifier
from repro.core.trainer import evaluate_f1
from repro.data import load_dataset
from repro.lm import load_pretrained
from repro.lm.model import MiniLM


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


class TestLSTGenerality:
    def test_lst_over_finetuning_classifier(self, backbone):
        """Attach LST to the vanilla fine-tuning model (not PromptModel)."""
        lm, tok = backbone
        state = lm.state_dict()
        view = load_dataset("REL-HETER").low_resource(seed=0)

        def factory():
            fresh = MiniLM(lm.config)
            fresh.load_state_dict(state)
            return SequenceClassifier(fresh, tok, max_len=64)

        config = SelfTrainingConfig(iterations=1, teacher_epochs=2,
                                    student_epochs=2, mc_passes=2,
                                    pseudo_label_ratio=0.2, batch_size=8)
        trainer = LightweightSelfTrainer(factory, config)
        model, report = trainer.run(view.labeled, view.unlabeled[:10],
                                    view.valid)
        assert isinstance(model, SequenceClassifier)
        assert report.pseudo_labels_added[0] == 2
        preds_f1 = evaluate_f1(model, view.test)
        assert 0.0 <= preds_f1 <= 1.0

    def test_lst_with_alternative_selection_strategy(self, backbone):
        lm, tok = backbone
        state = lm.state_dict()
        view = load_dataset("REL-HETER").low_resource(seed=0)

        def factory():
            fresh = MiniLM(lm.config)
            fresh.load_state_dict(state)
            return SequenceClassifier(fresh, tok, max_len=64)

        config = SelfTrainingConfig(iterations=1, teacher_epochs=2,
                                    student_epochs=2, mc_passes=2,
                                    selection_strategy="confidence",
                                    pseudo_label_ratio=0.2, batch_size=8)
        model, report = LightweightSelfTrainer(factory, config).run(
            view.labeled, view.unlabeled[:10], view.valid)
        assert report.pseudo_labels_added[0] == 2
