"""End-to-end tests for the PromptEM facade (tiny backbone, tiny budgets)."""

import numpy as np
import pytest

from repro.core import PromptEM, PromptEMConfig
from repro.core.finetune import SequenceClassifier
from repro.core.prompt_model import PromptModel
from repro.data import load_dataset
from repro.lm import load_pretrained


def tiny_config(**overrides):
    defaults = dict(model_name="minilm-tiny", teacher_epochs=2,
                    student_epochs=2, mc_passes=2, unlabeled_cap=12,
                    batch_size=8, max_len=64, prune_frequency=1)
    defaults.update(overrides)
    return PromptEMConfig(**defaults)


@pytest.fixture(scope="module")
def view():
    return load_dataset("REL-HETER").low_resource(seed=0)


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PromptEMConfig(template="t3")
        with pytest.raises(ValueError):
            PromptEMConfig(label_words="fancy")
        with pytest.raises(ValueError):
            PromptEMConfig(pseudo_label_ratio=0.0)
        with pytest.raises(ValueError):
            PromptEMConfig(prune_ratio=1.0)
        with pytest.raises(ValueError):
            PromptEMConfig(mc_passes=1)

    def test_ablation_helpers(self):
        cfg = PromptEMConfig()
        assert not cfg.without_prompt_tuning().use_prompt_tuning
        assert not cfg.without_self_training().use_self_training
        assert not cfg.without_pruning().use_dynamic_pruning
        # variants do not mutate the original
        assert cfg.use_prompt_tuning and cfg.use_self_training


class TestFacade:
    def test_fit_predict_evaluate(self, view, backbone):
        lm, tok = backbone
        matcher = PromptEM(tiny_config(), lm=lm, tokenizer=tok).fit(view)
        preds = matcher.predict(view.test)
        assert preds.shape == (len(view.test),)
        prf = matcher.evaluate(view.test)
        assert 0.0 <= prf.f1 <= 100.0
        assert matcher.report is not None

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            PromptEM(tiny_config()).predict([])

    def test_mismatched_backbone_args_rejected(self, backbone):
        lm, _ = backbone
        with pytest.raises(ValueError):
            PromptEM(tiny_config(), lm=lm)

    def test_empty_labeled_rejected(self, view, backbone):
        lm, tok = backbone
        matcher = PromptEM(tiny_config(), lm=lm, tokenizer=tok)
        with pytest.raises(ValueError):
            matcher.fit_pairs([], view.unlabeled, view.valid)

    def test_without_prompt_tuning_uses_classifier(self, view, backbone):
        lm, tok = backbone
        cfg = tiny_config(use_self_training=False).without_prompt_tuning()
        matcher = PromptEM(cfg, lm=lm, tokenizer=tok).fit(view)
        assert isinstance(matcher.model, SequenceClassifier)

    def test_with_prompt_tuning_uses_prompt_model(self, view, backbone):
        lm, tok = backbone
        cfg = tiny_config(use_self_training=False)
        matcher = PromptEM(cfg, lm=lm, tokenizer=tok).fit(view)
        assert isinstance(matcher.model, PromptModel)
        assert matcher.report is None

    def test_unlabeled_cap_subsamples(self, view, backbone):
        lm, tok = backbone
        cfg = tiny_config(unlabeled_cap=5)
        matcher = PromptEM(cfg, lm=lm, tokenizer=tok).fit(view)
        # 10% of a <=5-sample pool selects at most 1 pseudo-label.
        assert matcher.report.pseudo_labels_added[0] <= 1

    def test_backbone_not_mutated_by_fit(self, view, backbone):
        lm, tok = backbone
        before = {k: v.copy() for k, v in lm.state_dict().items()}
        PromptEM(tiny_config(), lm=lm, tokenizer=tok).fit(view)
        after = lm.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_probabilities_normalized(self, view, backbone):
        lm, tok = backbone
        matcher = PromptEM(tiny_config(use_self_training=False),
                           lm=lm, tokenizer=tok).fit(view)
        probs = matcher.predict_proba(view.test[:5])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)
