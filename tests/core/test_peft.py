"""PEFT identities: soft prompts and adapters must be bit-exact no-ops
until trained, train only the delta, and round-trip through state dicts."""

import numpy as np
import pytest

from repro.core import (
    PromptModel, Trainer, TrainerConfig, Verbalizer, apply_peft,
    has_adapters, install_adapters, load_peft_state, make_template,
    peft_kind, peft_state, remove_adapters, trainable_fraction,
)
from repro.core.peft import SoftPrompt
from repro.data import load_dataset
from repro.infer import InferenceEngine
from repro.lm import load_pretrained


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("REL-HETER")


@pytest.fixture(scope="module")
def pairs(dataset):
    return dataset.test[:8]


def make_model(backbone, seed=0):
    lm, tok = load_pretrained("minilm-tiny")  # fresh weights per model
    template = make_template("t1", tok, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab),
                        seed=seed)
    model.eval()
    return model


def probs_of(model, pairs):
    return InferenceEngine().predict_proba(model, pairs)


def test_soft_prompt_warm_start_is_bit_identical(backbone, pairs):
    model = make_model(backbone)
    base = probs_of(model, pairs)
    apply_peft(model, "soft_prompt")
    assert isinstance(model.prompt_encoder, SoftPrompt)
    assert np.array_equal(probs_of(model, pairs), base)


def test_adapters_zero_init_is_bit_identical(backbone, pairs):
    model = make_model(backbone)
    base = probs_of(model, pairs)
    apply_peft(model, "adapter", bottleneck=4)
    assert has_adapters(model.lm)
    assert np.array_equal(probs_of(model, pairs), base)


def test_active_adapters_match_reference_path(backbone, pairs):
    """Once adapters carry real weights, the fastpath and the autograd
    reference forward must still agree."""
    model = make_model(backbone)
    apply_peft(model, "adapter", bottleneck=4)
    rng = np.random.default_rng(0)
    for _, param in model.named_trainable_parameters():
        param.data[...] += (0.05 * rng.standard_normal(param.data.shape)
                            ).astype(param.data.dtype)
    fast = probs_of(model, pairs)
    slow = model(pairs).numpy()  # autograd reference forward
    np.testing.assert_allclose(fast, slow, rtol=2e-4, atol=2e-5)


def test_remove_adapters_restores_base_model(backbone, pairs):
    model = make_model(backbone)
    base = probs_of(model, pairs)
    base_params = dict(model.lm.named_parameters())
    adapters = install_adapters(model.lm, bottleneck=4)
    assert len(adapters) > 0
    assert remove_adapters(model.lm)
    assert not has_adapters(model.lm)
    assert dict(model.lm.named_parameters()).keys() == base_params.keys()
    assert np.array_equal(probs_of(model, pairs), base)


def test_apply_peft_freezes_backbone_only(backbone):
    model = make_model(backbone)
    apply_peft(model, "soft_prompt")
    names = [name for name, _ in model.named_trainable_parameters()]
    assert names == ["prompt_encoder.embeddings"]
    assert trainable_fraction(model) <= 0.02


def test_adapter_fraction_within_budget(backbone):
    model = make_model(backbone)
    apply_peft(model, "adapter", bottleneck=4)
    assert trainable_fraction(model) <= 0.02
    assert peft_kind(model) == "adapter"


def test_unknown_kind_rejected(backbone):
    model = make_model(backbone)
    with pytest.raises(ValueError, match="soft_prompt"):
        apply_peft(model, "lora")


def test_training_moves_only_the_delta(backbone, dataset):
    view = dataset.low_resource(seed=0)
    model = make_model(backbone)
    apply_peft(model, "soft_prompt")
    frozen_before = {name: param.data.copy()
                     for name, param in model.named_parameters()
                     if not getattr(param, "trainable", True)}
    prompt_before = model.prompt_encoder.embeddings.data.copy()

    trainer = Trainer(model, TrainerConfig(epochs=2, batch_size=8, lr=1e-2))
    trainer.fit(view.labeled[:16], view.valid[:8])

    assert not np.array_equal(model.prompt_encoder.embeddings.data,
                              prompt_before)
    for name, param in model.named_parameters():
        if name in frozen_before:
            assert np.array_equal(param.data, frozen_before[name]), name


def test_peft_state_round_trip(backbone, pairs):
    donor = make_model(backbone)
    apply_peft(donor, "adapter", bottleneck=4)
    rng = np.random.default_rng(3)
    for _, param in donor.named_trainable_parameters():
        param.data[...] += (0.1 * rng.standard_normal(param.data.shape)
                            ).astype(param.data.dtype)
    state = peft_state(donor)
    want = probs_of(donor, pairs)

    receiver = make_model(backbone)
    apply_peft(receiver, "adapter", bottleneck=4)
    load_peft_state(receiver, state)
    assert np.array_equal(probs_of(receiver, pairs), want)

    with pytest.raises(KeyError):
        load_peft_state(make_model(backbone), state)  # no PEFT applied
