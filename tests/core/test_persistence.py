"""Tests for PromptEM save/load."""

import numpy as np
import pytest

from repro.core import PromptEM, PromptEMConfig
from repro.data import load_dataset
from repro.lm import load_pretrained


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="module")
def fitted(backbone):
    lm, tok = backbone
    view = load_dataset("REL-HETER").low_resource(seed=0)
    cfg = PromptEMConfig(model_name="minilm-tiny", teacher_epochs=2,
                         student_epochs=2, mc_passes=2, unlabeled_cap=8,
                         batch_size=8, max_len=64,
                         summarize_long_text=False)
    matcher = PromptEM(cfg, lm=lm, tokenizer=tok).fit(view)
    return matcher, view


class TestSaveLoad:
    def test_roundtrip_predictions_identical(self, fitted, backbone, tmp_path):
        matcher, view = fitted
        lm, tok = backbone
        path = tmp_path / "matcher.npz"
        matcher.save(path)
        reloaded = PromptEM.load(path, lm=lm, tokenizer=tok)
        a = matcher.predict_proba(view.test[:10])
        b = reloaded.predict_proba(view.test[:10])
        np.testing.assert_allclose(a, b, atol=1e-6)
        np.testing.assert_array_equal(matcher.predict(view.test[:10]),
                                      reloaded.predict(view.test[:10]))

    def test_threshold_restored(self, fitted, backbone, tmp_path):
        matcher, _ = fitted
        lm, tok = backbone
        path = tmp_path / "matcher.npz"
        matcher.save(path)
        reloaded = PromptEM.load(path, lm=lm, tokenizer=tok)
        assert (reloaded.model.decision_threshold
                == matcher.model.decision_threshold)

    def test_config_restored(self, fitted, backbone, tmp_path):
        matcher, _ = fitted
        lm, tok = backbone
        path = tmp_path / "matcher.npz"
        matcher.save(path)
        reloaded = PromptEM.load(path, lm=lm, tokenizer=tok)
        assert reloaded.config == matcher.config

    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            PromptEM(PromptEMConfig()).save(tmp_path / "x.npz")

    def test_finetune_variant_roundtrip(self, backbone, tmp_path):
        lm, tok = backbone
        view = load_dataset("REL-HETER").low_resource(seed=0)
        cfg = PromptEMConfig(model_name="minilm-tiny", teacher_epochs=2,
                             batch_size=8, max_len=64, mc_passes=2,
                             use_self_training=False,
                             use_prompt_tuning=False,
                             summarize_long_text=False)
        matcher = PromptEM(cfg, lm=lm, tokenizer=tok).fit(view)
        path = tmp_path / "ft.npz"
        matcher.save(path)
        reloaded = PromptEM.load(path, lm=lm, tokenizer=tok)
        np.testing.assert_array_equal(matcher.predict(view.test[:8]),
                                      reloaded.predict(view.test[:8]))
