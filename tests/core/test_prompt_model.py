"""Tests for PromptModel mechanics with the tiny cached backbone."""

import numpy as np
import pytest

from repro.core import PromptModel, Verbalizer, make_template
from repro.core.trainer import predict_proba
from repro.data import load_dataset
from repro.lm import load_pretrained


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="module")
def pairs():
    return load_dataset("REL-HETER").test[:6]


class TestPromptModel:
    @pytest.mark.parametrize("template_name,continuous", [
        ("t1", False), ("t2", False), ("t1", True), ("t2", True),
    ])
    def test_forward_shapes_all_variants(self, backbone, pairs,
                                         template_name, continuous):
        lm, tok = backbone
        template = make_template(template_name, tok, continuous=continuous,
                                 max_len=96)
        model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
        model.eval()
        probs = model(pairs)
        assert probs.shape == (len(pairs), 2)
        np.testing.assert_allclose(probs.numpy().sum(axis=1), 1.0, atol=1e-5)

    def test_mask_logits_shape(self, backbone, pairs):
        lm, tok = backbone
        template = make_template("t2", tok, continuous=True, max_len=96)
        model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
        model.eval()
        logits = model.mask_logits(pairs)
        assert logits.shape == (len(pairs), len(tok.vocab))

    def test_loss_backward_reaches_prompt_encoder_and_lm(self, backbone, pairs):
        lm, tok = backbone
        template = make_template("t2", tok, continuous=True, max_len=96)
        model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
        labels = np.array([p.label for p in pairs])
        loss = model.loss(pairs, labels)
        loss.backward()
        assert model.prompt_encoder.embeddings.grad is not None
        assert model.lm.token_embedding.weight.grad is not None
        model.zero_grad()

    def test_hard_template_has_no_prompt_encoder(self, backbone, pairs):
        lm, tok = backbone
        template = make_template("t1", tok, continuous=False, max_len=96)
        model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
        assert model.prompt_encoder is None

    def test_weighted_loss_zero_weights(self, backbone, pairs):
        lm, tok = backbone
        template = make_template("t2", tok, continuous=False, max_len=96)
        model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
        labels = np.array([p.label for p in pairs])
        loss = model.loss(pairs, labels, sample_weights=np.zeros(len(pairs)))
        assert loss.item() == 0.0

    def test_eval_deterministic(self, backbone, pairs):
        lm, tok = backbone
        template = make_template("t2", tok, continuous=True, max_len=96)
        model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
        a = predict_proba(model, pairs)
        b = predict_proba(model, pairs)
        np.testing.assert_array_equal(a, b)
