"""Tests for Algorithm 1 (lightweight self-training) on the toy model."""

import numpy as np
import pytest

from repro.core.self_training import (
    LightweightSelfTrainer, SelfTrainingConfig, SelfTrainingReport,
)
from repro.core.trainer import evaluate_f1

from .dummies import ToyPairModel, toy_view


def make_config(**overrides):
    defaults = dict(iterations=1, teacher_epochs=10, student_epochs=10,
                    pseudo_label_ratio=0.2, mc_passes=3,
                    prune_frequency=4, prune_ratio=0.2,
                    batch_size=16, lr=0.05, seed=0)
    defaults.update(overrides)
    return SelfTrainingConfig(**defaults)


@pytest.fixture(scope="module")
def view():
    return toy_view(n=200, labeled=16, seed=7)


class TestAlgorithm1:
    def test_returns_model_and_report(self, view):
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(dropout=0.2),
                                         make_config())
        model, report = trainer.run(view.labeled, view.unlabeled, view.valid)
        assert isinstance(report, SelfTrainingReport)
        assert len(report.teacher_valid_f1) == 1
        assert len(report.student_valid_f1) == 1
        assert report.pseudo_labels_added[0] > 0

    def test_quality_on_separable_task(self, view):
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(dropout=0.2),
                                         make_config())
        model, _ = trainer.run(view.labeled, view.unlabeled, view.valid)
        assert evaluate_f1(model, view.test) > 0.6

    def test_pseudo_labels_respect_ratio(self, view):
        cfg = make_config(pseudo_label_ratio=0.1)
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(dropout=0.2), cfg)
        _, report = trainer.run(view.labeled, view.unlabeled, view.valid)
        expected = int(round(len(view.unlabeled) * 0.1))
        assert report.pseudo_labels_added[0] == expected

    def test_pruning_reduces_final_train_size(self, view):
        cfg = make_config(prune_ratio=0.3, prune_frequency=3,
                          student_epochs=9)
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(dropout=0.2), cfg)
        _, report = trainer.run(view.labeled, view.unlabeled, view.valid)
        initial = len(view.labeled) + report.pseudo_labels_added[0]
        assert report.samples_pruned[0] > 0
        assert report.final_train_size < initial

    def test_no_pruning_when_disabled(self, view):
        cfg = make_config(use_dynamic_pruning=False)
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(dropout=0.2), cfg)
        _, report = trainer.run(view.labeled, view.unlabeled, view.valid)
        assert report.samples_pruned == [0]

    def test_empty_unlabeled_pool_is_fine(self, view):
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(dropout=0.2),
                                         make_config())
        _, report = trainer.run(view.labeled, [], view.valid)
        assert report.pseudo_labels_added == [0]

    def test_zero_iterations_rejected(self, view):
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(),
                                         make_config(iterations=0))
        with pytest.raises(RuntimeError):
            trainer.run(view.labeled, view.unlabeled, view.valid)

    def test_multiple_iterations_accumulate(self, view):
        cfg = make_config(iterations=2, teacher_epochs=6, student_epochs=6)
        trainer = LightweightSelfTrainer(lambda: ToyPairModel(dropout=0.2), cfg)
        _, report = trainer.run(view.labeled, view.unlabeled, view.valid)
        assert len(report.teacher_valid_f1) == 2
        assert len(report.student_valid_f1) == 2
