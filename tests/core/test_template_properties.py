"""Property-based tests on the prompt templates (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.templates import PROMPT_PLACEHOLDER, make_template
from repro.text import Tokenizer, build_vocab

TEXT = st.text(alphabet="abcdefghij 0123456789", min_size=0, max_size=200)


@pytest.fixture(scope="module")
def tok():
    return Tokenizer(build_vocab(["is to they are"], max_words=50))


@settings(max_examples=40, deadline=None)
@given(left=TEXT, right=TEXT,
       name=st.sampled_from(["t1", "t2"]),
       continuous=st.booleans(),
       max_len=st.integers(32, 128))
def test_property_render_invariants(left, right, name, continuous, max_len):
    vocab = build_vocab(["is to they are"], max_words=50)
    tok = Tokenizer(vocab)
    template = make_template(name, tok, continuous=continuous,
                             max_len=max_len, tokens_per_slot=2)
    inst = template.render(left, right)
    # (1) never exceeds the budget
    assert len(inst.ids) <= max_len
    # (2) the mask is where the instance says it is
    assert inst.ids[inst.mask_position] == vocab.mask_id
    # (3) exactly one [MASK]
    assert inst.ids.count(vocab.mask_id) == 1
    # (4) the full complement of prompt slots survives truncation
    expected_slots = template.num_prompt_tokens
    assert inst.ids.count(PROMPT_PLACEHOLDER) == expected_slots
    # (5) starts with [CLS], ends with [SEP]
    assert inst.ids[0] == vocab.cls_id
    assert inst.ids[-1] == vocab.sep_id


@settings(max_examples=20, deadline=None)
@given(left=TEXT, right=TEXT)
def test_property_hard_and_continuous_share_entity_budgeting(tok, left, right):
    hard = make_template("t2", tok, continuous=False, max_len=64)
    cont = make_template("t2", tok, continuous=True, max_len=64)
    ih, ic = hard.render(left, right), cont.render(left, right)
    # The continuous instance is longer by exactly the prompt slots when
    # nothing is truncated; never shorter.
    assert len(ic.ids) >= len(ih.ids) - 1 or len(ic.ids) == 64
