"""Tests for prompt templates and the P-tuning prompt encoder."""

import numpy as np
import pytest

from repro.core.templates import (
    PROMPT_PLACEHOLDER, ContinuousTemplate, HardTemplateT1, HardTemplateT2,
    PromptEncoder, TemplateInstance, make_template,
)
from repro.text import Tokenizer, build_vocab


@pytest.fixture(scope="module")
def tok():
    vocab = build_vocab(
        ["golden dragon chinese restaurant main street they are is to "
         "matched similar relevant mismatched different irrelevant"],
        max_words=200)
    return Tokenizer(vocab)


class TestTemplateInstance:
    def test_rejects_bad_mask_position(self):
        with pytest.raises(ValueError):
            TemplateInstance(ids=[1, 2, 3], mask_position=5)


class TestHardTemplates:
    def test_t1_layout(self, tok):
        inst = HardTemplateT1(tok, max_len=64).render("golden dragon", "main street")
        vocab = tok.vocab
        assert inst.ids[0] == vocab.cls_id
        assert inst.ids[inst.mask_position] == vocab.mask_id
        assert inst.ids[-1] == vocab.sep_id
        # "they are" immediately precedes the mask.
        they, are = vocab.id_of("they"), vocab.id_of("are")
        assert inst.ids[inst.mask_position - 2:inst.mask_position] == [they, are]

    def test_t2_layout(self, tok):
        inst = HardTemplateT2(tok, max_len=64).render("golden dragon", "main street")
        vocab = tok.vocab
        assert inst.ids[inst.mask_position] == vocab.mask_id
        assert inst.ids[inst.mask_position - 1] == vocab.id_of("is")
        assert inst.ids[inst.mask_position + 1] == vocab.id_of("to")

    def test_truncation_respects_max_len(self, tok):
        long = "golden dragon " * 50
        for cls in (HardTemplateT1, HardTemplateT2):
            inst = cls(tok, max_len=32).render(long, long)
            assert len(inst.ids) <= 32
            assert inst.ids[inst.mask_position] == tok.vocab.mask_id

    def test_no_placeholders_in_hard_templates(self, tok):
        inst = HardTemplateT1(tok, max_len=64).render("a", "b")
        assert PROMPT_PLACEHOLDER not in inst.ids


class TestContinuousTemplates:
    @pytest.mark.parametrize("layout", ["t1", "t2"])
    def test_placeholder_count(self, tok, layout):
        template = ContinuousTemplate(tok, layout=layout, max_len=64,
                                      tokens_per_slot=2)
        inst = template.render("golden dragon", "main street")
        assert inst.ids.count(PROMPT_PLACEHOLDER) == template.num_prompt_tokens
        assert template.num_prompt_tokens == 6

    @pytest.mark.parametrize("layout", ["t1", "t2"])
    def test_mask_is_mask_token(self, tok, layout):
        template = ContinuousTemplate(tok, layout=layout, max_len=64)
        inst = template.render("golden dragon", "main street")
        assert inst.ids[inst.mask_position] == tok.vocab.mask_id

    def test_truncation_with_prompts(self, tok):
        template = ContinuousTemplate(tok, layout="t2", max_len=40,
                                      tokens_per_slot=3)
        inst = template.render("golden dragon " * 30, "main street " * 30)
        assert len(inst.ids) <= 40
        assert inst.ids.count(PROMPT_PLACEHOLDER) == 9

    def test_invalid_layout_rejected(self, tok):
        with pytest.raises(ValueError):
            ContinuousTemplate(tok, layout="t3")

    def test_invalid_slot_count_rejected(self, tok):
        with pytest.raises(ValueError):
            ContinuousTemplate(tok, tokens_per_slot=0)


class TestPromptEncoder:
    def test_output_shape(self):
        encoder = PromptEncoder(6, 32, rng=np.random.default_rng(0))
        out = encoder()
        assert out.shape == (6, 32)

    def test_trainable_and_differentiable(self):
        encoder = PromptEncoder(4, 16, rng=np.random.default_rng(0))
        (encoder() ** 2).sum().backward()
        assert encoder.embeddings.grad is not None
        assert encoder.lstm.forward_lstm.cell.w_ih.grad is not None

    def test_rejects_zero_tokens(self):
        with pytest.raises(ValueError):
            PromptEncoder(0, 16)


class TestFactory:
    def test_all_four_variants(self, tok):
        for name in ("t1", "t2"):
            hard = make_template(name, tok, continuous=False)
            cont = make_template(name, tok, continuous=True)
            assert hard.num_prompt_tokens == 0
            assert cont.num_prompt_tokens > 0

    def test_unknown_name(self, tok):
        with pytest.raises(ValueError):
            make_template("t9", tok)
