"""Tests for decision-threshold calibration and class balancing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.trainer import (
    Trainer, TrainerConfig, _class_balance_weights, predict, tune_threshold,
)
from repro.eval.metrics import ConfusionMatrix

from .dummies import ToyPairModel, toy_view


class TestTuneThreshold:
    def test_separable_scores(self):
        probs = np.array([[0.9, 0.1], [0.8, 0.2], [0.2, 0.8], [0.1, 0.9]])
        labels = np.array([0, 0, 1, 1])
        threshold = tune_threshold(probs, labels)
        preds = (probs[:, 1] > threshold).astype(int)
        assert ConfusionMatrix.from_labels(labels, preds).f1 == 1.0

    def test_shifted_scores_recovered(self):
        """Scores clustered near 0.6 with the class boundary inside."""
        pos = np.linspace(0.62, 0.70, 10)
        neg = np.linspace(0.50, 0.58, 30)
        scores = np.concatenate([neg, pos])
        probs = np.stack([1 - scores, scores], axis=1)
        labels = np.array([0] * 30 + [1] * 10)
        threshold = tune_threshold(probs, labels)
        preds = (scores > threshold).astype(int)
        assert ConfusionMatrix.from_labels(labels, preds).f1 == 1.0

    def test_single_score_value_falls_back(self):
        probs = np.full((4, 2), 0.5)
        labels = np.array([0, 1, 0, 1])
        assert tune_threshold(probs, labels) == 0.5

    @given(st.integers(2, 40), st.integers(0, 1000))
    def test_property_threshold_at_least_argmax_f1(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(n)
        probs = np.stack([1 - scores, scores], axis=1)
        labels = rng.integers(0, 2, size=n)
        if labels.sum() == 0 or labels.sum() == n:
            labels[0] = 1 - labels[0]
        threshold = tune_threshold(probs, labels)
        tuned = ConfusionMatrix.from_labels(
            labels, (scores > threshold).astype(int)).f1
        argmax = ConfusionMatrix.from_labels(
            labels, probs.argmax(axis=1)).f1
        assert tuned >= argmax - 1e-12


class TestClassBalance:
    def test_balanced_input_uniform_weights(self):
        view = toy_view(n=40, labeled=20, seed=0)
        weights = _class_balance_weights(view.labeled)
        # pos rate ~50% in the toy task -> weights near 1
        assert weights.mean() == pytest.approx(1.0, abs=1e-9)

    def test_minority_class_upweighted(self):
        view = toy_view(n=40, labeled=20, seed=0)
        pairs = [p for p in view.labeled if p.label == 0][:9]
        pairs += [p for p in view.labeled if p.label == 1][:3]
        weights = _class_balance_weights(pairs)
        pos_weight = weights[[p.label for p in pairs].index(1)]
        neg_weight = weights[[p.label for p in pairs].index(0)]
        assert pos_weight > neg_weight
        assert weights.mean() == pytest.approx(1.0, abs=1e-9)

    def test_single_class_does_not_crash(self):
        view = toy_view(n=40, labeled=20, seed=0)
        pairs = [p for p in view.labeled if p.label == 0]
        weights = _class_balance_weights(pairs)
        assert np.isfinite(weights).all()


class TestCalibratedPredict:
    def test_trainer_sets_threshold(self):
        view = toy_view(n=120, labeled=30, seed=1)
        model = ToyPairModel(seed=0)
        Trainer(model, TrainerConfig(epochs=10, lr=0.05)).fit(
            view.labeled, valid=view.valid)
        assert hasattr(model, "decision_threshold")
        assert 0.0 <= model.decision_threshold <= 1.0

    def test_predict_honours_threshold(self):
        view = toy_view(n=60, labeled=20, seed=2)
        model = ToyPairModel(seed=0)
        model.decision_threshold = 1.1  # nothing clears it
        preds = predict(model, view.test)
        assert (preds == 0).all()
        model.decision_threshold = -0.1  # everything clears it
        preds = predict(model, view.test)
        assert (preds == 1).all()

    def test_no_calibration_when_disabled(self):
        view = toy_view(n=60, labeled=20, seed=3)
        model = ToyPairModel(seed=0)
        Trainer(model, TrainerConfig(epochs=3, lr=0.05,
                                     calibrate_threshold=False)).fit(
            view.labeled, valid=view.valid)
        assert not hasattr(model, "decision_threshold")


class TestTieBreaking:
    """tune_threshold's deterministic tie rule: among cuts within 1e-12 of
    the best F1, prefer the 0.5 default, else the smallest cut."""

    def test_exact_tie_prefers_default(self):
        # duplicate scores on both sides of 0.5: the 0.5 cut and the 0.6
        # midpoint produce identical confusion matrices (F1 = 0.5)
        probs = np.array([[0.6, 0.4], [0.6, 0.4], [0.2, 0.8], [0.2, 0.8]])
        labels = np.array([0, 1, 0, 1])
        assert tune_threshold(probs, labels) == 0.5

    def test_all_cuts_tied_returns_default(self):
        # all-negative labels: every cut scores F1 = 0, a maximal tie
        probs = np.array([[0.9, 0.1], [0.7, 0.3], [0.4, 0.6]])
        labels = np.array([0, 0, 0])
        assert tune_threshold(probs, labels) == 0.5

    def test_permutation_invariant(self):
        rng = np.random.default_rng(7)
        scores = rng.random(60)
        labels = rng.integers(0, 2, size=60)
        probs = np.stack([1 - scores, scores], axis=1)
        reference = tune_threshold(probs, labels)
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(60)
            assert tune_threshold(probs[perm], labels[perm]) == reference

    def test_matches_brute_force_with_tie_rule(self):
        """Across random inputs the result achieves the brute-force max F1
        and is exactly the cut the tie rule selects."""
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(4, 30))
            # coarse grid so duplicate scores (and hence ties) are common
            scores = rng.integers(0, 8, size=n) / 8.0
            labels = rng.integers(0, 2, size=n)
            probs = np.stack([1 - scores, scores], axis=1)

            unique = np.unique(scores)
            cuts = [0.5] + [(a + b) / 2
                            for a, b in zip(unique[:-1], unique[1:])]
            f1s = np.array([ConfusionMatrix.from_labels(
                labels, (scores > cut).astype(int)).f1 for cut in cuts])
            tied = [cut for cut, f1 in zip(cuts, f1s)
                    if f1 >= f1s.max() - 1e-12]
            expected = 0.5 if 0.5 in tied else min(tied)

            got = tune_threshold(probs, labels)
            assert got == expected, (seed, tied, got)
            achieved = ConfusionMatrix.from_labels(
                labels, (scores > got).astype(int)).f1
            assert achieved == pytest.approx(f1s.max(), abs=1e-12)
