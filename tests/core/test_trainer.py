"""Tests for the generic Trainer using the toy pair model."""

import numpy as np
import pytest

from repro.core.trainer import (
    Trainer, TrainerConfig, evaluate_f1, predict, predict_proba,
    stochastic_proba,
)

from .dummies import ToyPairModel, toy_view


@pytest.fixture(scope="module")
def view():
    return toy_view(n=160, labeled=40, seed=1)


class TestTrainer:
    def test_learns_separable_task(self, view):
        model = ToyPairModel(seed=0)
        Trainer(model, TrainerConfig(epochs=30, batch_size=16, lr=0.05,
                                     seed=0)).fit(view.labeled, valid=view.valid)
        assert evaluate_f1(model, view.test) > 0.8

    def test_loss_decreases(self, view):
        model = ToyPairModel(seed=0)
        history = Trainer(model, TrainerConfig(epochs=20, lr=0.05)).fit(
            view.labeled)
        assert history.losses[-1] < history.losses[0]

    def test_best_epoch_restored(self, view):
        model = ToyPairModel(seed=0)
        history = Trainer(model, TrainerConfig(
            epochs=10, lr=0.05, select_best_on_valid=True)).fit(
            view.labeled, valid=view.valid)
        assert 0 <= history.best_epoch < 10
        assert len(history.valid_f1) == 10

    def test_empty_train_rejected(self):
        model = ToyPairModel()
        with pytest.raises(ValueError):
            Trainer(model).fit([])

    def test_weight_length_mismatch_rejected(self, view):
        model = ToyPairModel()
        with pytest.raises(ValueError):
            Trainer(model).fit(view.labeled, sample_weights=np.ones(3))

    def test_model_left_in_eval_mode(self, view):
        model = ToyPairModel()
        Trainer(model, TrainerConfig(epochs=2)).fit(view.labeled)
        assert not model.training

    def test_epoch_callback_can_replace_train_set(self, view):
        model = ToyPairModel()
        sizes = []

        def shrink(epoch, trainer):
            remaining = view.labeled[: max(4, len(view.labeled) - 10 * (epoch + 1))]
            sizes.append(len(remaining))
            return remaining

        Trainer(model, TrainerConfig(epochs=3, lr=0.05)).fit(
            view.labeled, epoch_callback=shrink)
        assert sizes and sizes[-1] <= sizes[0]

    def test_zero_weights_yield_zero_loss(self, view):
        model = ToyPairModel()
        labels = np.array([p.label for p in view.labeled[:8]])
        loss = model.loss(view.labeled[:8], labels,
                          sample_weights=np.zeros(8))
        assert loss.item() == 0.0


class TestPredictionHelpers:
    def test_predict_proba_rows_sum_to_one(self, view):
        model = ToyPairModel()
        probs = predict_proba(model, view.test)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)

    def test_predict_proba_empty(self):
        assert predict_proba(ToyPairModel(), []).shape == (0, 2)

    def test_empty_dtype_matches_nonempty(self, view):
        # the seed implementation returned float64 for the empty case but
        # float32 (the default dtype) otherwise
        model = ToyPairModel()
        nonempty = predict_proba(model, view.test[:4])
        assert predict_proba(model, []).dtype == nonempty.dtype
        assert stochastic_proba(model, []).dtype == nonempty.dtype
        assert stochastic_proba(model, []).shape == (0, 2)

    def test_predict_deterministic_in_eval(self, view):
        model = ToyPairModel()
        a = predict_proba(model, view.test[:10])
        b = predict_proba(model, view.test[:10])
        np.testing.assert_array_equal(a, b)

    def test_stochastic_proba_varies(self, view):
        model = ToyPairModel(dropout=0.5)
        a = stochastic_proba(model, view.test[:10])
        b = stochastic_proba(model, view.test[:10])
        assert not np.allclose(a, b)

    def test_stochastic_restores_mode(self, view):
        model = ToyPairModel()
        model.eval()
        stochastic_proba(model, view.test[:4])
        assert not model.training

    def test_evaluate_f1_empty(self):
        assert evaluate_f1(ToyPairModel(), []) == 0.0
