"""Tier-1 smoke pass over the training benchmark logic.

Runs the comparisons from ``benchmarks/bench_training.py`` at tiny scale on
the cached backbone and checks structural outputs -- step counts, positive
throughput numbers, round-off-level parity divergence -- WITHOUT asserting
anything about wall-clock speed, so the test is stable on loaded CI
machines. The real timing comparison lives in the benchmark itself.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_training import (  # noqa: E402
    run_fit_comparison, run_pretrain_comparison,
)


@pytest.mark.smoke
def test_pretrain_benchmark_smoke():
    result = run_pretrain_comparison(corpus_sentences=60, epochs=1,
                                     parity_epochs=1, d_model=16,
                                     num_layers=1)
    assert result["sequences"] == 60
    assert result["seed_steps"] > 0 and result["fast_steps"] > 0
    assert result["seed_sps"] > 0 and result["fast_sps"] > 0
    # float64 rng-order-preserving parity: pure round-off
    assert result["divergence"] < 1e-6


@pytest.mark.smoke
def test_fit_benchmark_smoke():
    result = run_fit_comparison(model_name="minilm-tiny", train_cap=12,
                                valid_cap=8, epochs=1, parity_epochs=1)
    assert result["pairs"] == 12
    assert result["seed_steps"] > 0 and result["fast_steps"] > 0
    assert result["seed_sps"] > 0 and result["fast_sps"] > 0
    assert result["divergence"] < 1e-6
