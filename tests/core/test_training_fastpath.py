"""Training-fastpath behavior: batching, persistent engine, loop parity.

The seed-style reference loops live in ``benchmarks/bench_training.py``;
these tests pin the fastpath to them at test scale -- identical thresholds
from the vectorized ``tune_threshold``, one engine per ``Trainer.fit``,
partition-exactness of token-budget batches, and <= 1e-7 final-parameter
agreement for full training runs in rng-order-preserving parity mode.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_training import (  # noqa: E402
    max_param_divergence, seed_style_fit, seed_style_pretrain,
    seed_tune_threshold,
)
import repro.core.trainer as trainer_mod  # noqa: E402
from repro.autograd import get_default_dtype, set_default_dtype  # noqa: E402
from repro.core import (  # noqa: E402
    PromptModel, Verbalizer, make_template,
)
from repro.core.trainer import (  # noqa: E402
    Trainer, TrainerConfig, tune_threshold,
)
from repro.data import load_dataset  # noqa: E402
from repro.lm import (  # noqa: E402
    LMConfig, MiniLM, PretrainConfig, load_pretrained, pretrain,
)
from repro.text import Tokenizer, build_corpus, build_vocab  # noqa: E402

from .dummies import ToyPairModel, toy_view


@pytest.fixture
def float64_mode():
    prev = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(prev)


class TestTuneThresholdEquivalence:
    def test_matches_seed_loop_on_random_inputs(self):
        for seed in range(25):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 60))
            scores = rng.random(n)
            if seed % 3 == 0:  # force ties between scores
                scores = np.round(scores, 1)
            probs = np.stack([1 - scores, scores], axis=1)
            labels = rng.integers(0, 2, size=n)
            assert tune_threshold(probs, labels) == \
                seed_tune_threshold(probs, labels), f"seed {seed}"

    def test_matches_seed_loop_single_class(self):
        rng = np.random.default_rng(1)
        scores = rng.random(12)
        probs = np.stack([1 - scores, scores], axis=1)
        for label in (0, 1):
            labels = np.full(12, label)
            assert tune_threshold(probs, labels) == \
                seed_tune_threshold(probs, labels)


class TestPersistentValidationEngine:
    def test_fit_builds_exactly_one_engine(self, monkeypatch):
        calls = []
        original = trainer_mod._transient_engine

        def counting(batch_size):
            calls.append(batch_size)
            return original(batch_size)

        monkeypatch.setattr(trainer_mod, "_transient_engine", counting)
        view = toy_view(n=80, labeled=24, seed=3)
        Trainer(ToyPairModel(seed=0),
                TrainerConfig(epochs=4, batch_size=8, lr=0.05, seed=0)).fit(
            view.labeled, valid=view.valid)
        # seed behaviour was one transient engine per epoch's validation
        assert len(calls) == 1


class TestTokenBudgetBatches:
    def test_batches_partition_every_index(self):
        lm, tok = load_pretrained("minilm-tiny")
        template = make_template("t1", tok, max_len=64)
        model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
        train = load_dataset("REL-HETER").train[:17]
        fit_trainer = Trainer(model, TrainerConfig(
            epochs=1, batch_size=4, token_budget=256, seed=0))
        engine = trainer_mod._transient_engine(4)
        _, lengths = fit_trainer._train_encodings(engine, train)
        rng = np.random.default_rng(0)
        order = rng.permutation(len(train))
        batches = list(fit_trainer._epoch_batches(order, lengths, rng))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(len(train)))
        longest = max(lengths)
        for batch in batches:
            assert len(batch) <= 4
            width = max(lengths[i] for i in batch)
            assert len(batch) * width <= max(256, longest)

    def test_preserve_rng_order_restores_seed_slicing(self):
        fit_trainer = Trainer(ToyPairModel(), TrainerConfig(
            batch_size=4, preserve_rng_order=True))
        order = np.arange(10)[::-1]
        batches = list(fit_trainer._epoch_batches(
            order, list(range(10)), np.random.default_rng(0)))
        np.testing.assert_array_equal(np.concatenate(batches), order)
        assert [len(b) for b in batches] == [4, 4, 2]


class TestPretrainParity:
    def test_order_preserving_matches_seed_loop(self, float64_mode):
        corpus = build_corpus(60, seed=0)
        vocab = build_vocab(corpus, max_words=300)
        cfg = LMConfig(vocab_size=len(vocab), d_model=16, num_layers=1,
                       num_heads=2, d_ff=32, max_len=48)
        pre_cfg = PretrainConfig(epochs=2, batch_size=16, max_len=32,
                                 lr=1e-3, seed=0, order_preserving=True)
        ref, fast = MiniLM(cfg), MiniLM(cfg)
        seed_style_pretrain(ref, Tokenizer(vocab), corpus, pre_cfg)
        result = pretrain(fast, Tokenizer(vocab), corpus, pre_cfg)
        assert result.steps > 0
        assert max_param_divergence(ref, fast) <= 1e-7

    def test_token_budget_changes_batching_but_still_learns(self):
        corpus = build_corpus(60, seed=0)
        vocab = build_vocab(corpus, max_words=300)
        cfg = LMConfig(vocab_size=len(vocab), d_model=16, num_layers=1,
                       num_heads=2, d_ff=32, max_len=48)
        result = pretrain(MiniLM(cfg), Tokenizer(vocab), corpus,
                          PretrainConfig(epochs=2, batch_size=16, max_len=32,
                                         lr=2e-3, seed=0, token_budget=256))
        assert result.epoch_losses[-1] < result.epoch_losses[0]


class TestTrainerParity:
    def test_preserve_rng_order_matches_seed_loop(self, float64_mode):
        dataset = load_dataset("REL-HETER")
        train = dataset.train[:12]
        valid = dataset.valid[:8] if dataset.valid else dataset.test[:8]
        cfg = TrainerConfig(epochs=2, batch_size=4, lr=5e-4, seed=0,
                            preserve_rng_order=True)

        def build_model():
            lm, tok = load_pretrained("minilm-tiny")
            template = make_template("t1", tok, max_len=64)
            return PromptModel(lm, tok, template,
                               Verbalizer.designed(tok.vocab))

        ref, fast = build_model(), build_model()
        seed_style_fit(ref, train, valid, cfg)
        history = Trainer(fast, cfg).fit(train, valid)
        assert history.steps > 0
        assert max_param_divergence(ref, fast) <= 1e-7
        # thresholds are midpoints of round-off-divergent probabilities, so
        # agreement is to round-off, not bit-exact
        assert ref.decision_threshold == \
            pytest.approx(fast.decision_threshold, abs=1e-9)
