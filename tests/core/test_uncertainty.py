"""Tests for MC-Dropout uncertainty and pseudo-label selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.uncertainty import (
    McDropoutResult, mc_dropout, select_by_clustering, select_by_confidence,
    select_by_uncertainty, select_pseudo_labels, top_n_count,
)
from repro.core.trainer import Trainer, TrainerConfig

from .dummies import ToyPairModel, toy_view


@pytest.fixture(scope="module")
def trained_setup():
    view = toy_view(n=160, labeled=40, seed=2)
    model = ToyPairModel(dropout=0.3, seed=0)
    Trainer(model, TrainerConfig(epochs=25, lr=0.05, seed=0)).fit(
        view.labeled, valid=view.valid)
    return model, view


class TestMcDropout:
    def test_result_shapes(self, trained_setup):
        model, view = trained_setup
        result = mc_dropout(model, view.unlabeled[:20], passes=5)
        assert result.mean_probs.shape == (20, 2)
        assert result.labels.shape == (20,)
        assert result.uncertainty.shape == (20,)
        assert result.all_probs.shape == (5, 20, 2)
        assert len(result) == 20

    def test_uncertainty_nonnegative(self, trained_setup):
        model, view = trained_setup
        result = mc_dropout(model, view.unlabeled[:20], passes=5)
        assert (result.uncertainty >= 0).all()

    def test_requires_two_passes(self, trained_setup):
        model, view = trained_setup
        with pytest.raises(ValueError):
            mc_dropout(model, view.unlabeled[:5], passes=1)

    def test_empty_pool(self, trained_setup):
        model, _ = trained_setup
        result = mc_dropout(model, [], passes=3)
        assert len(result) == 0

    def test_zero_dropout_means_zero_uncertainty(self, trained_setup):
        _, view = trained_setup
        deterministic = ToyPairModel(dropout=0.0)
        result = mc_dropout(deterministic, view.unlabeled[:10], passes=4)
        np.testing.assert_allclose(result.uncertainty, 0.0, atol=1e-12)


class TestTopN:
    def test_eq2_count(self):
        assert top_n_count(100, 0.1) == 10
        assert top_n_count(5, 0.1) == 1       # at least one
        assert top_n_count(0, 0.1) == 0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            top_n_count(10, 0.0)
        with pytest.raises(ValueError):
            top_n_count(10, 1.5)

    @given(st.integers(0, 500), st.floats(0.01, 1.0))
    def test_property_never_exceeds_pool(self, total, ratio):
        assert 0 <= top_n_count(total, ratio) <= total


class TestSelectors:
    def test_uncertainty_picks_least_uncertain(self):
        result = McDropoutResult(
            mean_probs=np.tile([0.5, 0.5], (4, 1)),
            labels=np.zeros(4, dtype=np.int64),
            uncertainty=np.array([0.3, 0.1, 0.4, 0.2]),
            all_probs=np.zeros((2, 4, 2)))
        picked = select_by_uncertainty(result, 2)
        assert sorted(picked.tolist()) == [1, 3]

    def test_confidence_picks_most_confident(self):
        probs = np.array([[0.9, 0.1], [0.6, 0.4], [0.2, 0.8], [0.55, 0.45]])
        picked = select_by_confidence(probs, 2)
        assert sorted(picked.tolist()) == [0, 2]

    def test_clustering_prefers_centroid_neighbors(self):
        rng = np.random.default_rng(0)
        cluster_a = rng.normal(0, 0.05, size=(10, 2))
        cluster_b = rng.normal(5, 0.05, size=(10, 2))
        outlier = np.array([[2.5, 2.5]])
        feats = np.vstack([cluster_a, cluster_b, outlier])
        picked = select_by_clustering(feats, 20, seed=0)
        assert 20 not in picked  # the outlier is selected last

    def test_clustering_empty(self):
        assert select_by_clustering(np.zeros((0, 2)), 3).size == 0


class TestSelectPseudoLabels:
    @pytest.mark.parametrize("strategy", ["uncertainty", "confidence", "clustering"])
    def test_strategies_return_requested_count(self, trained_setup, strategy):
        model, view = trained_setup
        selection = select_pseudo_labels(model, view.unlabeled[:50],
                                         ratio=0.2, passes=4,
                                         strategy=strategy)
        assert len(selection.indices) == 10
        assert len(selection.pseudo_labels) == 10
        assert set(selection.pseudo_labels.tolist()) <= {0, 1}

    def test_unknown_strategy(self, trained_setup):
        model, view = trained_setup
        with pytest.raises(ValueError):
            select_pseudo_labels(model, view.unlabeled[:10], strategy="magic")

    def test_empty_pool(self, trained_setup):
        model, _ = trained_setup
        selection = select_pseudo_labels(model, [], ratio=0.5)
        assert selection.indices.size == 0

    def test_uncertainty_labels_better_than_chance(self, trained_setup):
        """On the separable toy task, selected pseudo-labels should be
        mostly correct -- the Table 5 premise."""
        model, view = trained_setup
        pool = view.unlabeled
        truth = np.array(view.unlabeled_true_labels)
        selection = select_pseudo_labels(model, pool, ratio=0.3, passes=6,
                                         strategy="uncertainty")
        accuracy = (selection.pseudo_labels == truth[selection.indices]).mean()
        assert accuracy > 0.7
