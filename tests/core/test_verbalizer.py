"""Tests for the label-word verbalizer and Eq. 1 scoring."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.verbalizer import Verbalizer
from repro.text import Vocabulary
from repro.text.lexicon import NEGATIVE_LABEL_WORDS, POSITIVE_LABEL_WORDS


@pytest.fixture
def vocab():
    return Vocabulary(POSITIVE_LABEL_WORDS + NEGATIVE_LABEL_WORDS + ["other"])


class TestConstruction:
    def test_designed_sets(self, vocab):
        verb = Verbalizer.designed(vocab)
        assert verb.words[1] == ["matched", "similar", "relevant"]
        assert verb.words[0] == ["mismatched", "different", "irrelevant"]

    def test_simple_sets(self, vocab):
        verb = Verbalizer.simple(vocab)
        assert verb.words[1] == ["matched"]
        assert verb.words[0] == ["mismatched"]

    def test_out_of_vocab_rejected(self):
        with pytest.raises(ValueError):
            Verbalizer(Vocabulary(["matched"]), ["matched"], ["notinvocab"])

    def test_empty_class_rejected(self, vocab):
        with pytest.raises(ValueError):
            Verbalizer(vocab, [], ["different"])

    def test_overlapping_sets_rejected(self, vocab):
        with pytest.raises(ValueError):
            Verbalizer(vocab, ["matched"], ["matched"])


class TestScoring:
    def test_eq1_mean_over_label_words(self, vocab):
        verb = Verbalizer.designed(vocab)
        probs = np.zeros((1, len(vocab)))
        # Put known mass on each positive word.
        for w, mass in zip(POSITIVE_LABEL_WORDS, (0.3, 0.2, 0.1)):
            probs[0, vocab.id_of(w)] = mass
        for w in NEGATIVE_LABEL_WORDS:
            probs[0, vocab.id_of(w)] = 0.05
        scores = verb.class_probs(Tensor(probs)).numpy()
        assert scores[0, 1] == pytest.approx((0.3 + 0.2 + 0.1) / 3)
        assert scores[0, 0] == pytest.approx(0.05)

    def test_batch_shape(self, vocab):
        verb = Verbalizer.designed(vocab)
        probs = np.random.default_rng(0).random((5, len(vocab)))
        assert verb.class_probs(Tensor(probs)).shape == (5, 2)

    def test_gradient_flows(self, vocab):
        verb = Verbalizer.designed(vocab)
        probs = Tensor(np.full((2, len(vocab)), 0.01), requires_grad=True)
        verb.class_probs(probs).sum().backward()
        assert probs.grad is not None
        # Only label-word columns receive gradient.
        nonzero_cols = np.nonzero(np.abs(probs.grad).sum(axis=0))[0]
        expected = sorted(set(verb.ids[0]) | set(verb.ids[1]))
        assert sorted(nonzero_cols.tolist()) == expected
