"""Tests for the overlap blocker."""

import pytest

from repro.data import OverlapBlocker, blocking_recall, load_dataset
from repro.data.blocking import BlockingResult


class TestOverlapBlocker:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            OverlapBlocker(threshold=1.5)

    def test_keeps_true_matches_drops_junk(self):
        ds = load_dataset("REL-HETER")
        blocker = OverlapBlocker(threshold=0.2)
        result = blocker.block(ds.left_table, ds.right_table)
        assert 0 < len(result.candidates) < result.total_pairs
        assert result.reduction_ratio > 0.3

    def test_recall_on_known_matches(self):
        ds = load_dataset("REL-HETER")
        truth = [(p.left.record_id, p.right.record_id)
                 for split in (ds.train, ds.valid, ds.test)
                 for p in split if p.label == 1]
        result = OverlapBlocker(threshold=0.2).block(ds.left_table, ds.right_table)
        assert blocking_recall(result, truth) > 0.9

    def test_lower_threshold_keeps_more(self):
        ds = load_dataset("REL-HETER")
        loose = OverlapBlocker(threshold=0.1).block(ds.left_table, ds.right_table)
        tight = OverlapBlocker(threshold=0.6).block(ds.left_table, ds.right_table)
        assert len(loose.candidates) >= len(tight.candidates)

    def test_recall_with_no_truth_is_one(self):
        result = BlockingResult(candidates=[], total_pairs=0)
        assert blocking_recall(result, []) == 1.0

    def test_reduction_ratio_empty(self):
        # vacuous cross product: everything (nothing) was pruned, so the
        # ratio is 1.0 -- an empty job must not read as "no reduction"
        assert BlockingResult(candidates=[], total_pairs=0).reduction_ratio == 1.0

    def test_reduction_ratio_empty_beats_keep_everything(self):
        empty = BlockingResult(candidates=[], total_pairs=0)
        keep_all = BlockingResult(candidates=[(None, None)], total_pairs=1)
        assert empty.reduction_ratio > keep_all.reduction_ratio
        assert keep_all.reduction_ratio == 0.0


class TestEdgeCases:
    """Boundary behavior shared with the serving-side index (the two use
    the same record_tokens rule)."""

    @staticmethod
    def _table(name, texts):
        from repro.data.records import EntityRecord, Table

        return Table(name=name, kind="text", records=[
            EntityRecord.text_record(f"{name}{i}", text)
            for i, text in enumerate(texts)])

    def test_empty_tables(self):
        blocker = OverlapBlocker(threshold=0.2)
        result = blocker.block(self._table("l", []), self._table("r", []))
        assert result.candidates == []
        assert result.total_pairs == 0
        assert result.reduction_ratio == 1.0

    def test_empty_left_only(self):
        blocker = OverlapBlocker(threshold=0.2)
        result = blocker.block(self._table("l", []),
                               self._table("r", ["some right rows"]))
        assert result.candidates == [] and result.total_pairs == 0

    def test_no_shared_tokens_yields_no_candidates(self):
        blocker = OverlapBlocker(threshold=0.0)
        result = blocker.block(self._table("l", ["alpha beta gamma"]),
                               self._table("r", ["delta epsilon zeta"]))
        assert result.candidates == []
        assert result.total_pairs == 1
        assert result.reduction_ratio == 1.0

    def test_records_with_only_dropped_tokens(self):
        # 1-char tokens are excluded from the blocking token set, so these
        # records have no tokens and can never be candidates
        blocker = OverlapBlocker(threshold=0.0)
        result = blocker.block(self._table("l", ["a b c"]),
                               self._table("r", ["a b c"]))
        assert result.candidates == []

    def test_record_tokens_drops_markers_and_short_tokens(self):
        from repro.data.blocking import record_tokens
        from repro.data.records import EntityRecord

        record = EntityRecord(record_id="x", kind="relational",
                              values={"title": "a DB of things"})
        tokens = record_tokens(record)
        assert "[COL]" not in tokens and "[VAL]" not in tokens
        assert "a" not in tokens  # single-char dropped
        assert "db" in tokens or "DB" in tokens

    def test_empty_value_record_has_no_tokens(self):
        from repro.data.blocking import record_tokens
        from repro.data.records import EntityRecord

        assert record_tokens(EntityRecord(record_id="e", kind="relational",
                                          values={})) == frozenset()
        assert record_tokens(EntityRecord.text_record("t", "")) == frozenset()

    def test_unicode_tokens_survive(self):
        from repro.data.blocking import record_tokens
        from repro.data.records import EntityRecord

        tokens = record_tokens(EntityRecord.text_record(
            "u", "Café Müller restaurant 北京"))
        assert any("caf" in t.lower() for t in tokens)
        assert any("ller" in t.lower() for t in tokens)
        assert len(tokens) >= 2

    def test_marker_only_and_single_char_records_empty(self):
        from repro.data.blocking import record_tokens
        from repro.data.records import EntityRecord

        # values made only of serialization markers / 1-char tokens
        assert record_tokens(EntityRecord.text_record(
            "m", "[COL] [VAL]")) == frozenset()
        assert record_tokens(EntityRecord.text_record(
            "s", "a b c 1 2")) == frozenset()

    def test_tokenless_records_never_divide_by_zero(self):
        # both sides tokenless: scoring paths must not raise
        blocker = OverlapBlocker(threshold=0.0)
        result = blocker.block(self._table("l", ["a", ""]),
                               self._table("r", ["b", "[COL]"]))
        assert result.candidates == []
        assert result.reduction_ratio == 1.0

    def test_min_shared_tokens_gate(self):
        blocker = OverlapBlocker(threshold=0.0, min_shared_tokens=2)
        result = blocker.block(self._table("l", ["apple banana"]),
                               self._table("r", ["apple cherry"]))
        assert result.candidates == []  # only one shared token
        blocker = OverlapBlocker(threshold=0.0, min_shared_tokens=1)
        result = blocker.block(self._table("l", ["apple banana"]),
                               self._table("r", ["apple cherry"]))
        assert len(result.candidates) == 1


class TestTokenMemo:
    """record_tokens is memoized on content_key -- the memo must be both
    effective (same object twice -> same frozenset instance) and safe
    (a record replaced under the same id never serves stale tokens)."""

    def test_same_content_returns_cached_instance(self):
        from repro.data.blocking import clear_token_cache, record_tokens
        from repro.data.records import EntityRecord

        clear_token_cache()
        record = EntityRecord.text_record("memo1", "alpha beta gamma")
        first = record_tokens(record)
        again = record_tokens(
            EntityRecord.text_record("memo1", "alpha beta gamma"))
        assert first == {"alpha", "beta", "gamma"}
        assert again is first  # served from the memo, not recomputed

    def test_mutated_content_readd_not_stale(self):
        # the serving catalog replaces records under an existing id; the
        # memo keys on content, so the new version gets fresh tokens
        from repro.data.blocking import clear_token_cache, record_tokens
        from repro.data.records import EntityRecord

        clear_token_cache()
        old = EntityRecord.text_record("same-id", "alpha beta")
        assert record_tokens(old) == {"alpha", "beta"}
        new = EntityRecord.text_record("same-id", "delta epsilon")
        assert record_tokens(new) == {"delta", "epsilon"}
        # and the old version is still individually correct (not evicted
        # into returning the new tokens)
        assert record_tokens(old) == {"alpha", "beta"}

    def test_serving_index_replacement_uses_fresh_tokens(self):
        from repro.data.records import EntityRecord
        from repro.serve import ServingIndex

        index = ServingIndex(default_k=3)
        index.add(EntityRecord.text_record("r1", "alpha beta"))
        index.add(EntityRecord.text_record("r1", "delta epsilon"))
        hits = index.candidates(
            EntityRecord.text_record("q", "delta epsilon"), 3)
        assert [r.record_id for r, _ in hits] == ["r1"]
        assert index.candidates(
            EntityRecord.text_record("q", "alpha beta"), 3) == []

    def test_cache_capacity_bounded(self):
        import repro.data.blocking as blocking
        from repro.data.blocking import clear_token_cache, record_tokens
        from repro.data.records import EntityRecord

        clear_token_cache()
        cap = blocking._TOKEN_CACHE_CAP
        old_cap = cap
        blocking._TOKEN_CACHE_CAP = 8
        try:
            for i in range(32):
                record_tokens(
                    EntityRecord.text_record(f"cap{i}", f"token{i} value"))
            assert len(blocking._token_cache) <= 8
        finally:
            blocking._TOKEN_CACHE_CAP = old_cap
            clear_token_cache()
