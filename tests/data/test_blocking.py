"""Tests for the overlap blocker."""

import pytest

from repro.data import OverlapBlocker, blocking_recall, load_dataset
from repro.data.blocking import BlockingResult


class TestOverlapBlocker:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            OverlapBlocker(threshold=1.5)

    def test_keeps_true_matches_drops_junk(self):
        ds = load_dataset("REL-HETER")
        blocker = OverlapBlocker(threshold=0.2)
        result = blocker.block(ds.left_table, ds.right_table)
        assert 0 < len(result.candidates) < result.total_pairs
        assert result.reduction_ratio > 0.3

    def test_recall_on_known_matches(self):
        ds = load_dataset("REL-HETER")
        truth = [(p.left.record_id, p.right.record_id)
                 for split in (ds.train, ds.valid, ds.test)
                 for p in split if p.label == 1]
        result = OverlapBlocker(threshold=0.2).block(ds.left_table, ds.right_table)
        assert blocking_recall(result, truth) > 0.9

    def test_lower_threshold_keeps_more(self):
        ds = load_dataset("REL-HETER")
        loose = OverlapBlocker(threshold=0.1).block(ds.left_table, ds.right_table)
        tight = OverlapBlocker(threshold=0.6).block(ds.left_table, ds.right_table)
        assert len(loose.candidates) >= len(tight.candidates)

    def test_recall_with_no_truth_is_one(self):
        result = BlockingResult(candidates=[], total_pairs=0)
        assert blocking_recall(result, []) == 1.0

    def test_reduction_ratio_empty(self):
        assert BlockingResult(candidates=[], total_pairs=0).reduction_ratio == 0.0
