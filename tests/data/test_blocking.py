"""Tests for the overlap blocker."""

import pytest

from repro.data import OverlapBlocker, blocking_recall, load_dataset
from repro.data.blocking import BlockingResult


class TestOverlapBlocker:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            OverlapBlocker(threshold=1.5)

    def test_keeps_true_matches_drops_junk(self):
        ds = load_dataset("REL-HETER")
        blocker = OverlapBlocker(threshold=0.2)
        result = blocker.block(ds.left_table, ds.right_table)
        assert 0 < len(result.candidates) < result.total_pairs
        assert result.reduction_ratio > 0.3

    def test_recall_on_known_matches(self):
        ds = load_dataset("REL-HETER")
        truth = [(p.left.record_id, p.right.record_id)
                 for split in (ds.train, ds.valid, ds.test)
                 for p in split if p.label == 1]
        result = OverlapBlocker(threshold=0.2).block(ds.left_table, ds.right_table)
        assert blocking_recall(result, truth) > 0.9

    def test_lower_threshold_keeps_more(self):
        ds = load_dataset("REL-HETER")
        loose = OverlapBlocker(threshold=0.1).block(ds.left_table, ds.right_table)
        tight = OverlapBlocker(threshold=0.6).block(ds.left_table, ds.right_table)
        assert len(loose.candidates) >= len(tight.candidates)

    def test_recall_with_no_truth_is_one(self):
        result = BlockingResult(candidates=[], total_pairs=0)
        assert blocking_recall(result, []) == 1.0

    def test_reduction_ratio_empty(self):
        assert BlockingResult(candidates=[], total_pairs=0).reduction_ratio == 0.0


class TestEdgeCases:
    """Boundary behavior shared with the serving-side index (the two use
    the same record_tokens rule)."""

    @staticmethod
    def _table(name, texts):
        from repro.data.records import EntityRecord, Table

        return Table(name=name, kind="text", records=[
            EntityRecord.text_record(f"{name}{i}", text)
            for i, text in enumerate(texts)])

    def test_empty_tables(self):
        blocker = OverlapBlocker(threshold=0.2)
        result = blocker.block(self._table("l", []), self._table("r", []))
        assert result.candidates == []
        assert result.total_pairs == 0
        assert result.reduction_ratio == 0.0

    def test_empty_left_only(self):
        blocker = OverlapBlocker(threshold=0.2)
        result = blocker.block(self._table("l", []),
                               self._table("r", ["some right rows"]))
        assert result.candidates == [] and result.total_pairs == 0

    def test_no_shared_tokens_yields_no_candidates(self):
        blocker = OverlapBlocker(threshold=0.0)
        result = blocker.block(self._table("l", ["alpha beta gamma"]),
                               self._table("r", ["delta epsilon zeta"]))
        assert result.candidates == []
        assert result.total_pairs == 1
        assert result.reduction_ratio == 1.0

    def test_records_with_only_dropped_tokens(self):
        # 1-char tokens are excluded from the blocking token set, so these
        # records have no tokens and can never be candidates
        blocker = OverlapBlocker(threshold=0.0)
        result = blocker.block(self._table("l", ["a b c"]),
                               self._table("r", ["a b c"]))
        assert result.candidates == []

    def test_record_tokens_drops_markers_and_short_tokens(self):
        from repro.data.blocking import record_tokens
        from repro.data.records import EntityRecord

        record = EntityRecord(record_id="x", kind="relational",
                              values={"title": "a DB of things"})
        tokens = record_tokens(record)
        assert "[COL]" not in tokens and "[VAL]" not in tokens
        assert "a" not in tokens  # single-char dropped
        assert "db" in tokens or "DB" in tokens

    def test_min_shared_tokens_gate(self):
        blocker = OverlapBlocker(threshold=0.0, min_shared_tokens=2)
        result = blocker.block(self._table("l", ["apple banana"]),
                               self._table("r", ["apple cherry"]))
        assert result.candidates == []  # only one shared token
        blocker = OverlapBlocker(threshold=0.0, min_shared_tokens=1)
        result = blocker.block(self._table("l", ["apple banana"]),
                               self._table("r", ["apple cherry"]))
        assert len(result.candidates) == 1
