"""Tests for GEMDataset, splits and low-resource views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CandidatePair, EntityRecord, GEMDataset, Table, split_pairs


def make_pairs(n_pos, n_neg):
    pairs = []
    for i in range(n_pos + n_neg):
        left = EntityRecord(f"l{i}", "relational", {"a": i})
        right = EntityRecord(f"r{i}", "relational", {"b": i})
        pairs.append(CandidatePair(left, right, 1 if i < n_pos else 0))
    return pairs


def make_dataset(n_pos=20, n_neg=60):
    pairs = make_pairs(n_pos, n_neg)
    train, valid, test = split_pairs(pairs, seed=1)
    left = Table("L", "relational", [p.left for p in pairs])
    right = Table("R", "relational", [p.right for p in pairs])
    return GEMDataset(name="toy", domain="test", left_table=left,
                      right_table=right, train=train, valid=valid, test=test)


class TestCandidatePair:
    def test_rejects_bad_label(self):
        rec = EntityRecord("x", "relational", {"a": 1})
        with pytest.raises(ValueError):
            CandidatePair(rec, rec, label=2)

    def test_with_label(self):
        rec = EntityRecord("x", "relational", {"a": 1})
        pair = CandidatePair(rec, rec, 1)
        hidden = pair.with_label(None)
        assert hidden.label is None and pair.label == 1


class TestSplitPairs:
    def test_partition_is_complete_and_disjoint(self):
        pairs = make_pairs(10, 30)
        train, valid, test = split_pairs(pairs, seed=0)
        assert len(train) + len(valid) + len(test) == 40
        ids = [(p.left.record_id, p.right.record_id) for p in train + valid + test]
        assert len(set(ids)) == 40

    def test_stratified_both_classes_everywhere(self):
        pairs = make_pairs(10, 30)
        for split in split_pairs(pairs, seed=0):
            labels = {p.label for p in split}
            assert labels == {0, 1}

    def test_deterministic(self):
        pairs = make_pairs(8, 24)
        a = split_pairs(pairs, seed=5)
        b = split_pairs(pairs, seed=5)
        for sa, sb in zip(a, b):
            assert [id(p) for p in sa] == [id(p) for p in sb]

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            split_pairs(make_pairs(2, 2), fractions=(0.5, 0.2, 0.2))

    def test_unlabeled_pair_rejected(self):
        rec = EntityRecord("x", "relational", {"a": 1})
        with pytest.raises(ValueError):
            split_pairs([CandidatePair(rec, rec, None)])


class TestGEMDataset:
    def test_rejects_unlabeled_train(self):
        rec = EntityRecord("x", "relational", {"a": 1})
        with pytest.raises(ValueError):
            GEMDataset(name="bad", domain="d",
                       left_table=Table("L", "relational"),
                       right_table=Table("R", "relational"),
                       train=[CandidatePair(rec, rec, None)])

    def test_statistics(self):
        ds = make_dataset()
        stats = ds.statistics()
        assert stats.labeled == ds.all_labeled == 80
        assert stats.left_rows == 80
        assert stats.train_low_resource == ds.low_resource_size()

    def test_positive_rate(self):
        ds = make_dataset(n_pos=20, n_neg=60)
        assert ds.positive_rate("train") == pytest.approx(0.25, abs=0.07)


class TestLowResource:
    def test_partition_of_train(self):
        ds = make_dataset()
        view = ds.low_resource(rate=0.2, seed=3)
        assert len(view.labeled) + len(view.unlabeled) == len(ds.train)

    def test_unlabeled_have_no_labels_but_truth_retained(self):
        ds = make_dataset()
        view = ds.low_resource(rate=0.2, seed=3)
        assert all(p.label is None for p in view.unlabeled)
        assert len(view.unlabeled_true_labels) == len(view.unlabeled)
        assert set(view.unlabeled_true_labels) <= {0, 1}

    def test_both_classes_in_labeled(self):
        ds = make_dataset()
        view = ds.low_resource(rate=0.1, seed=0)
        labels = {p.label for p in view.labeled}
        assert labels == {0, 1}

    def test_deterministic_per_seed(self):
        ds = make_dataset()
        a = ds.low_resource(rate=0.2, seed=7)
        b = ds.low_resource(rate=0.2, seed=7)
        assert [id(p) for p in a.labeled] == [id(p) for p in b.labeled]

    def test_different_seed_differs(self):
        ds = make_dataset()
        a = ds.low_resource(rate=0.2, seed=1)
        b = ds.low_resource(rate=0.2, seed=2)
        assert [id(p) for p in a.labeled] != [id(p) for p in b.labeled]

    def test_explicit_count(self):
        ds = make_dataset()
        view = ds.low_resource_count(10, seed=0)
        assert len(view.labeled) == 10

    def test_count_capped_at_train_size(self):
        ds = make_dataset()
        view = ds.low_resource_count(10_000, seed=0)
        assert len(view.labeled) == len(ds.train)
        assert not view.unlabeled

    def test_invalid_rate_rejected(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            ds.low_resource(rate=0.0)
        with pytest.raises(ValueError):
            ds.low_resource(rate=1.5)

    def test_view_exposes_parent_splits(self):
        ds = make_dataset()
        view = ds.low_resource(rate=0.2)
        assert view.valid is ds.valid
        assert view.test is ds.test
        assert view.name == ds.name

    @settings(max_examples=25, deadline=None)
    @given(rate=st.floats(0.05, 1.0), seed=st.integers(0, 50))
    def test_property_labeled_size_matches_rate(self, rate, seed):
        ds = make_dataset()
        view = ds.low_resource(rate=rate, seed=seed)
        expected = max(2, int(round(len(ds.train) * rate)))
        assert abs(len(view.labeled) - expected) <= 1
