"""Tests for the eight benchmark generators and the registry."""

import numpy as np
import pytest

from repro.data import DATASET_NAMES, load_dataset, make_generator, serialize
from repro.data.generators import GeneratorConfig
from repro.data.generators.restaurants import RelHeterGenerator


EXPECTED_KINDS = {
    "REL-HETER": ("relational", "relational"),
    "SEMI-HOMO": ("semi", "semi"),
    "SEMI-HETER": ("semi", "semi"),
    "SEMI-REL": ("semi", "relational"),
    "SEMI-TEXT-w": ("semi", "text"),
    "SEMI-TEXT-c": ("semi", "text"),
    "REL-TEXT": ("text", "relational"),
    "GEO-HETER": ("relational", "relational"),
}


class TestRegistry:
    def test_all_eight_datasets_present(self):
        assert len(DATASET_NAMES) == 8
        assert set(DATASET_NAMES) == set(EXPECTED_KINDS)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_generator("REL-NOPE")

    def test_cache_returns_same_object(self):
        a = load_dataset("REL-HETER")
        b = load_dataset("REL-HETER")
        assert a is b

    def test_no_cache_rebuilds(self):
        a = load_dataset("REL-HETER", cache=False)
        b = load_dataset("REL-HETER", cache=False)
        assert a is not b


@pytest.mark.parametrize("name", list(EXPECTED_KINDS))
class TestEachDataset:
    def test_format_pairing(self, name):
        ds = load_dataset(name)
        assert (ds.left_table.kind, ds.right_table.kind) == EXPECTED_KINDS[name]

    def test_splits_nonempty_and_labeled(self, name):
        ds = load_dataset(name)
        for split in (ds.train, ds.valid, ds.test):
            assert split
            assert all(p.label in (0, 1) for p in split)

    def test_both_classes_in_test(self, name):
        ds = load_dataset(name)
        assert {p.label for p in ds.test} == {0, 1}

    def test_right_table_larger_than_left(self, name):
        ds = load_dataset(name)
        assert len(ds.right_table) > len(ds.left_table)

    def test_serializable(self, name):
        ds = load_dataset(name)
        pair = ds.train[0]
        left, right = serialize(pair.left), serialize(pair.right)
        assert left.strip() and right.strip()

    def test_positive_rate_reasonable(self, name):
        ds = load_dataset(name)
        rate = ds.positive_rate("train")
        assert 0.1 < rate < 0.5


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        gen = RelHeterGenerator(GeneratorConfig(num_entities=10, seed=5))
        a, b = gen.build(), gen.build()
        assert len(a.train) == len(b.train)
        for pa, pb in zip(a.train, b.train):
            assert serialize(pa.left) == serialize(pb.left)
            assert serialize(pa.right) == serialize(pb.right)
            assert pa.label == pb.label

    def test_different_seed_differs(self):
        gen = RelHeterGenerator(GeneratorConfig(num_entities=10, seed=5))
        a = gen.build()
        b = gen.build(seed=6)
        texts_a = {serialize(p.left) for p in a.train}
        texts_b = {serialize(p.left) for p in b.train}
        assert texts_a != texts_b


class TestDifficultyStructure:
    def test_semi_heter_is_digit_heavy(self):
        """Paper: 53% of SEMI-HETER attribute values are digits."""
        ds = load_dataset("SEMI-HETER")
        values = []
        for record in ds.left_table:
            values.extend(str(v) for v in record.flat_values())
        digit_chars = sum(c.isdigit() for v in values for c in v)
        total_chars = sum(len(v.replace(" ", "")) for v in values)
        assert digit_chars / total_chars > 0.35

    def test_semi_heter_hard_negatives_share_title(self):
        """Sibling editions must collide on title (the LM trap)."""
        ds = load_dataset("SEMI-HETER")
        negatives = [p for p in ds.train if p.label == 0]
        overlaps = []
        for p in negatives:
            lt = set(str(p.left.values.get("Title", "")).split())
            rt = set(str(p.right.values.get("name", "")).split())
            if lt and rt:
                overlaps.append(len(lt & rt) / len(lt | rt))
        # A solid fraction of negatives are near-duplicates textually.
        assert np.mean([o > 0.5 for o in overlaps]) > 0.25

    def test_geo_positions_close_for_matches(self):
        ds = load_dataset("GEO-HETER")
        for p in ds.train:
            if p.label != 1:
                continue
            lat = float(p.left.values["latitude"])
            lon = float(p.left.values["longitude"])
            rlat, rlon = map(float, str(p.right.values["position"]).split())
            assert abs(lat - rlat) < 0.01 and abs(lon - rlon) < 0.01

    def test_rel_text_left_is_prose(self):
        ds = load_dataset("REL-TEXT")
        text = serialize(ds.train[0].left)
        assert "[COL]" not in text
        assert len(text.split()) > 5
