"""Tests for dataset persistence (bundle JSON + Machamp directory layout)."""

import json

import pytest

from repro.data import (
    load_dataset, load_dataset_file, load_machamp_dir, save_dataset,
    save_machamp_dir, serialize,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("REL-HETER")


class TestBundleRoundtrip:
    def test_roundtrip_preserves_everything(self, dataset, tmp_path):
        path = tmp_path / "rel-heter.json"
        save_dataset(dataset, path)
        loaded = load_dataset_file(path)
        assert loaded.name == dataset.name
        assert loaded.domain == dataset.domain
        assert loaded.default_rate == dataset.default_rate
        assert len(loaded.left_table) == len(dataset.left_table)
        assert len(loaded.right_table) == len(dataset.right_table)
        for split in ("train", "valid", "test"):
            orig, new = getattr(dataset, split), getattr(loaded, split)
            assert len(orig) == len(new)
            for a, b in zip(orig, new):
                assert a.label == b.label
                assert serialize(a.left) == serialize(b.left)
                assert serialize(a.right) == serialize(b.right)

    def test_pairs_reference_table_objects(self, dataset, tmp_path):
        path = tmp_path / "d.json"
        save_dataset(dataset, path)
        loaded = load_dataset_file(path)
        table_ids = {id(r) for r in loaded.left_table}
        assert all(id(p.left) in table_ids for p in loaded.train)

    def test_semi_and_text_records_roundtrip(self, tmp_path):
        ds = load_dataset("SEMI-TEXT-w")
        path = tmp_path / "st.json"
        save_dataset(ds, path)
        loaded = load_dataset_file(path)
        assert loaded.left_table.kind == "semi"
        assert loaded.right_table.kind == "text"
        # Nested dict values survive.
        semi_ds = load_dataset("SEMI-HETER")
        save_dataset(semi_ds, path)
        loaded = load_dataset_file(path)
        rec = loaded.right_table.records[0]
        assert isinstance(rec.values.get("identifiers"), dict)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError):
            load_dataset_file(path)

    def test_dangling_pair_reference_rejected(self, dataset, tmp_path):
        path = tmp_path / "d.json"
        save_dataset(dataset, path)
        payload = json.loads(path.read_text())
        payload["splits"]["train"][0]["left"] = "nonexistent"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_dataset_file(path)


class TestMachampLayout:
    def test_roundtrip(self, dataset, tmp_path):
        save_machamp_dir(dataset, tmp_path / "mc")
        loaded = load_machamp_dir(tmp_path / "mc", name="REL-HETER",
                                  domain="restaurant")
        assert loaded.name == "REL-HETER"
        assert len(loaded.train) == len(dataset.train)
        assert (sum(p.label for p in loaded.train)
                == sum(p.label for p in dataset.train))

    def test_text_table_roundtrip(self, tmp_path):
        ds = load_dataset("REL-TEXT")
        save_machamp_dir(ds, tmp_path / "rt")
        loaded = load_machamp_dir(tmp_path / "rt")
        assert loaded.left_table.kind == "text"
        assert loaded.right_table.kind == "relational"

    def test_missing_columns_rejected(self, dataset, tmp_path):
        save_machamp_dir(dataset, tmp_path / "mc")
        (tmp_path / "mc" / "train.csv").write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_machamp_dir(tmp_path / "mc")

    def test_unknown_pair_id_rejected(self, dataset, tmp_path):
        save_machamp_dir(dataset, tmp_path / "mc")
        with open(tmp_path / "mc" / "train.csv", "a") as f:
            f.write("zzz,zzz,1\n")
        with pytest.raises(ValueError):
            load_machamp_dir(tmp_path / "mc")

    def test_empty_table_rejected(self, dataset, tmp_path):
        save_machamp_dir(dataset, tmp_path / "mc")
        (tmp_path / "mc" / "left.json").write_text("")
        with pytest.raises(ValueError):
            load_machamp_dir(tmp_path / "mc")

    def test_loaded_dataset_supports_low_resource(self, dataset, tmp_path):
        save_machamp_dir(dataset, tmp_path / "mc")
        loaded = load_machamp_dir(tmp_path / "mc")
        view = loaded.low_resource(rate=0.2, seed=0)
        assert view.labeled and view.unlabeled
