"""Tests for MinHash signatures and LSH blocking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import blocking_recall, load_dataset
from repro.data.minhash import MinHashBlocker, MinHasher
from repro.text.similarity import jaccard

TOKENS = st.sets(st.text(alphabet="abcdefgh", min_size=1, max_size=6),
                 min_size=1, max_size=30)


class TestMinHasher:
    def test_signature_shape_and_determinism(self):
        hasher = MinHasher(num_hashes=32, seed=0)
        sig = hasher.signature({"a", "b", "c"})
        assert sig.shape == (32,)
        np.testing.assert_array_equal(sig, hasher.signature({"c", "b", "a"}))

    def test_empty_set_signature(self):
        hasher = MinHasher(num_hashes=8)
        assert (hasher.signature(set()) == (1 << 32) - 1).all()

    def test_identical_sets_estimate_one(self):
        hasher = MinHasher(num_hashes=64, seed=1)
        s = {"x", "y", "z"}
        assert MinHasher.estimate_jaccard(
            hasher.signature(s), hasher.signature(s)) == 1.0

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MinHasher.estimate_jaccard(np.zeros(4, dtype=np.uint64),
                                       np.zeros(8, dtype=np.uint64))

    @settings(max_examples=30, deadline=None)
    @given(a=TOKENS, b=TOKENS)
    def test_property_estimate_tracks_true_jaccard(self, a, b):
        hasher = MinHasher(num_hashes=256, seed=3)
        estimate = MinHasher.estimate_jaccard(hasher.signature(a),
                                              hasher.signature(b))
        true = jaccard(a, b)
        # 256 hashes give a standard error below ~0.032.
        assert abs(estimate - true) < 0.2


class TestMinHashBlocker:
    def test_invalid_banding(self):
        with pytest.raises(ValueError):
            MinHashBlocker(num_hashes=10, bands=3)

    def test_blocks_benchmark_with_high_recall(self):
        ds = load_dataset("REL-HETER")
        blocker = MinHashBlocker(num_hashes=64, bands=32, seed=0)
        result = blocker.block(ds.left_table, ds.right_table)
        truth = [(p.left.record_id, p.right.record_id)
                 for split in (ds.train, ds.valid, ds.test)
                 for p in split if p.label == 1]
        assert blocking_recall(result, truth) > 0.85
        assert result.reduction_ratio > 0.2

    def test_more_bands_more_candidates(self):
        ds = load_dataset("REL-HETER")
        few = MinHashBlocker(num_hashes=64, bands=8, seed=0).block(
            ds.left_table, ds.right_table)
        many = MinHashBlocker(num_hashes=64, bands=32, seed=0).block(
            ds.left_table, ds.right_table)
        assert len(many.candidates) >= len(few.candidates)

    def test_no_duplicate_candidates_per_left(self):
        ds = load_dataset("REL-HETER")
        result = MinHashBlocker(num_hashes=32, bands=16).block(
            ds.left_table, ds.right_table)
        seen = set()
        for l, r in result.candidates:
            key = (l.record_id, r.record_id)
            assert key not in seen
            seen.add(key)
