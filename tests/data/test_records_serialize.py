"""Tests for entity records, tables, and Section 2.2 serialization."""

import pytest

from repro.data import EntityRecord, Table, serialize, serialize_pair
from repro.text.tfidf import TfIdfSummarizer


class TestEntityRecord:
    def test_relational_record(self):
        rec = EntityRecord("r1", "relational", {"name": "cafe", "year": 2001})
        assert rec.num_attributes() == 2
        assert rec.flat_values() == ["cafe", 2001]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            EntityRecord("r1", "graph", {})

    def test_relational_rejects_nested(self):
        with pytest.raises(ValueError):
            EntityRecord("r1", "relational", {"cast": {"lead": "x"}})

    def test_text_record(self):
        rec = EntityRecord.text_record("t1", "an abstract")
        assert rec.text == "an abstract"
        assert rec.num_attributes() == 1

    def test_text_requires_single_text_value(self):
        with pytest.raises(ValueError):
            EntityRecord("t1", "text", {"body": "x"})

    def test_text_property_guard(self):
        rec = EntityRecord("r1", "relational", {"a": 1})
        with pytest.raises(AttributeError):
            _ = rec.text

    def test_semi_nested_attribute_count(self):
        rec = EntityRecord("s1", "semi", {
            "title": "x",
            "cast": {"lead": "a", "support": ["b", "c"]},
            "genres": ["drama"],
        })
        # title + lead + support-list + genres-list = 4 leaves
        assert rec.num_attributes() == 4


class TestTable:
    def test_kind_enforced_on_init(self):
        rec = EntityRecord("r1", "relational", {"a": 1})
        with pytest.raises(ValueError):
            Table("t", "semi", [rec])

    def test_kind_enforced_on_add(self):
        table = Table("t", "relational")
        with pytest.raises(ValueError):
            table.add(EntityRecord.text_record("t1", "x"))

    def test_by_id(self):
        rec = EntityRecord("r1", "relational", {"a": 1})
        table = Table("t", "relational", [rec])
        assert table.by_id("r1") is rec
        with pytest.raises(KeyError):
            table.by_id("nope")

    def test_avg_attributes(self):
        table = Table("t", "relational", [
            EntityRecord("a", "relational", {"x": 1}),
            EntityRecord("b", "relational", {"x": 1, "y": 2, "z": 3}),
        ])
        assert table.avg_attributes() == 2.0

    def test_avg_attributes_empty(self):
        assert Table("t", "relational").avg_attributes() == 0.0


class TestSerialize:
    def test_relational_col_val_tags(self):
        rec = EntityRecord("r1", "relational",
                           {"title": "efficient similarity", "year": 2003})
        out = serialize(rec)
        assert out == "[COL] title [VAL] efficient similarity [COL] year [VAL] 2003"

    def test_list_values_concatenated(self):
        rec = EntityRecord("s1", "semi",
                           {"authors": ["fagin", "kumar", "sivakumar"]})
        assert serialize(rec) == "[COL] authors [VAL] fagin kumar sivakumar"

    def test_nested_recursion(self):
        rec = EntityRecord("s1", "semi", {
            "cast": {"lead": "smith", "director": "chen"},
        })
        out = serialize(rec)
        assert out == ("[COL] cast [COL] lead [VAL] smith "
                       "[COL] director [VAL] chen")

    def test_text_passthrough(self):
        rec = EntityRecord.text_record("t1", "raw abstract text")
        assert serialize(rec) == "raw abstract text"

    def test_none_value_serialized_empty(self):
        rec = EntityRecord("r1", "relational", {"a": None})
        assert serialize(rec) == "[COL] a [VAL]"

    def test_float_integers_rendered_as_int(self):
        rec = EntityRecord("r1", "relational", {"pages": 288.0})
        assert serialize(rec) == "[COL] pages [VAL] 288"

    def test_text_summarization_applied(self):
        long_text = " ".join(f"word{i}" for i in range(100))
        rec = EntityRecord.text_record("t1", long_text)
        summ = TfIdfSummarizer(max_tokens=5).fit([long_text])
        out = serialize(rec, summarizer=summ)
        assert len(out.split()) == 5

    def test_structured_ignores_summarizer(self):
        rec = EntityRecord("r1", "relational", {"a": "b"})
        summ = TfIdfSummarizer(max_tokens=1).fit(["a b"])
        assert serialize(rec, summarizer=summ) == "[COL] a [VAL] b"

    def test_serialize_pair(self):
        a = EntityRecord("r1", "relational", {"x": 1})
        b = EntityRecord.text_record("t1", "hello")
        left, right = serialize_pair(a, b)
        assert "[COL]" in left and right == "hello"
