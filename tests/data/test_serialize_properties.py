"""Property-based tests on serialization (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import EntityRecord, serialize

ATTR_NAMES = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)
SCALARS = st.one_of(
    st.text(alphabet="abcdef 0123456789", max_size=30),
    st.integers(-10_000, 10_000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.none(),
)
FLAT_VALUES = st.dictionaries(ATTR_NAMES, SCALARS, min_size=1, max_size=6)


@settings(max_examples=60, deadline=None)
@given(values=FLAT_VALUES)
def test_property_relational_serialization_deterministic(values):
    rec = EntityRecord("r", "relational", values)
    assert serialize(rec) == serialize(rec)


@settings(max_examples=60, deadline=None)
@given(values=FLAT_VALUES)
def test_property_tag_counts_match_attrs(values):
    rec = EntityRecord("r", "relational", values)
    out = serialize(rec)
    assert out.count("[COL]") == len(values)
    assert out.count("[VAL]") == len(values)


@settings(max_examples=40, deadline=None)
@given(values=st.dictionaries(
    ATTR_NAMES,
    st.one_of(SCALARS,
              st.lists(st.text(alphabet="abc", max_size=5), max_size=3),
              st.dictionaries(ATTR_NAMES, SCALARS, min_size=1, max_size=3)),
    min_size=1, max_size=5))
def test_property_semi_serialization_never_crashes(values):
    rec = EntityRecord("s", "semi", values)
    out = serialize(rec)
    assert isinstance(out, str)
    assert "[COL]" in out


@settings(max_examples=40, deadline=None)
@given(text=st.text(max_size=100))
def test_property_text_records_pass_through(text):
    rec = EntityRecord.text_record("t", text)
    assert serialize(rec) == text
