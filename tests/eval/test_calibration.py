"""Tests for calibration diagnostics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.calibration import calibration_report, overconfidence_rate


def probs_from_scores(scores):
    scores = np.asarray(scores, dtype=np.float64)
    return np.stack([1 - scores, scores], axis=1)


class TestCalibrationReport:
    def test_perfectly_calibrated(self):
        """Confidence 0.75 with accuracy 0.75 -> ECE 0."""
        probs = probs_from_scores([0.75] * 4)
        labels = np.array([1, 1, 1, 0])  # predictions all 1; 3/4 correct
        report = calibration_report(probs, labels, num_bins=10)
        assert report.ece == pytest.approx(0.0, abs=1e-9)

    def test_maximally_overconfident(self):
        probs = probs_from_scores([0.99] * 10)
        labels = np.zeros(10, dtype=int)  # predictions all 1, all wrong
        report = calibration_report(probs, labels)
        assert report.ece == pytest.approx(0.99, abs=1e-9)
        assert report.mce == pytest.approx(0.99, abs=1e-9)

    def test_bins_partition_all_samples(self):
        rng = np.random.default_rng(0)
        probs = probs_from_scores(rng.random(100))
        labels = rng.integers(0, 2, size=100)
        report = calibration_report(probs, labels, num_bins=7)
        assert sum(b.count for b in report.bins) == 100

    def test_as_rows_skips_empty_bins(self):
        probs = probs_from_scores([0.95, 0.96])
        report = calibration_report(probs, np.array([1, 1]), num_bins=10)
        rows = report.as_rows()
        assert len(rows) == 1

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            calibration_report(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            calibration_report(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            calibration_report(np.zeros((3, 2)), np.zeros(3), num_bins=0)

    @given(st.integers(1, 200), st.integers(0, 100))
    def test_property_ece_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        probs = probs_from_scores(rng.random(n))
        labels = rng.integers(0, 2, size=n)
        report = calibration_report(probs, labels)
        assert 0.0 <= report.ece <= 1.0
        assert report.ece <= report.mce + 1e-12


class TestOverconfidence:
    def test_all_high_confidence_wrong(self):
        probs = probs_from_scores([0.99, 0.98])
        assert overconfidence_rate(probs, [0, 0], threshold=0.9) == 1.0

    def test_no_high_confidence_predictions(self):
        probs = probs_from_scores([0.6, 0.55])
        assert overconfidence_rate(probs, [1, 1], threshold=0.9) == 0.0

    def test_mixed(self):
        probs = probs_from_scores([0.95, 0.95, 0.95, 0.95])
        labels = [1, 1, 0, 1]
        assert overconfidence_rate(probs, labels, 0.9) == pytest.approx(0.25)
