"""Tests for confusion-matrix metrics and pseudo-label quality."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.metrics import (
    PRF, ConfusionMatrix, precision_recall_f1, pseudo_label_quality,
)


class TestConfusionMatrix:
    def test_known_counts(self):
        cm = ConfusionMatrix.from_labels([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert (cm.tp, cm.fn, cm.tn, cm.fp) == (2, 1, 1, 1)

    def test_metrics_values(self):
        cm = ConfusionMatrix(tp=2, fp=1, tn=1, fn=1)
        assert cm.precision == pytest.approx(2 / 3)
        assert cm.recall == pytest.approx(2 / 3)
        assert cm.f1 == pytest.approx(2 / 3)
        assert cm.tnr == pytest.approx(1 / 2)
        assert cm.accuracy == pytest.approx(3 / 5)

    def test_degenerate_no_positives_predicted(self):
        cm = ConfusionMatrix.from_labels([1, 1], [0, 0])
        assert cm.precision == 0.0 and cm.recall == 0.0 and cm.f1 == 0.0

    def test_all_negative_tnr(self):
        cm = ConfusionMatrix.from_labels([0, 0], [0, 0])
        assert cm.tnr == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConfusionMatrix.from_labels([1, 0], [1])

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError):
            ConfusionMatrix.from_labels([1, 2], [1, 0])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=50))
    def test_property_perfect_prediction(self, labels):
        cm = ConfusionMatrix.from_labels(labels, labels)
        assert cm.accuracy == 1.0
        if 1 in labels:
            assert cm.f1 == 1.0

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=40),
           st.lists(st.integers(0, 1), min_size=2, max_size=40))
    def test_property_f1_between_p_and_r_bounds(self, a, b):
        n = min(len(a), len(b))
        cm = ConfusionMatrix.from_labels(a[:n], b[:n])
        assert min(cm.precision, cm.recall) - 1e-12 <= cm.f1 <= max(
            cm.precision, cm.recall) + 1e-12


class TestPRF:
    def test_percent_scale(self):
        prf = PRF.from_labels([1, 1, 0, 0], [1, 1, 0, 0])
        assert prf.precision == 100.0 and prf.f1 == 100.0

    def test_as_row_rounding(self):
        prf = PRF(precision=66.666, recall=33.333, f1=44.444)
        assert prf.as_row() == (66.7, 33.3, 44.4)


class TestHelpers:
    def test_precision_recall_f1(self):
        p, r, f = precision_recall_f1([1, 0, 1], [1, 1, 1])
        assert p == pytest.approx(2 / 3)
        assert r == 1.0

    def test_pseudo_label_quality(self):
        tpr, tnr = pseudo_label_quality([1, 1, 0, 0], [1, 0, 0, 0])
        assert tpr == 0.5 and tnr == 1.0
