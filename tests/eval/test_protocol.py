"""Tests for the experiment protocol using the toy matcher."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from core.dummies import ToyPairModel  # noqa: E402
from repro.baselines.base import Matcher  # noqa: E402
from repro.core.trainer import Trainer, TrainerConfig, predict  # noqa: E402
from repro.eval.protocol import BenchScale, ExperimentRunner, bench_scale  # noqa: E402


class ToyMatcher(Matcher):
    name = "Toy"

    def fit(self, view):
        self.model = ToyPairModel(seed=0)
        Trainer(self.model, TrainerConfig(epochs=15, lr=0.05)).fit(
            view.labeled, valid=view.valid)
        return self

    def predict(self, pairs):
        return predict(self.model, pairs)


class TestBenchScale:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert bench_scale().name == "smoke"

    def test_default_is_paper(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        scale = bench_scale()
        assert scale.name == "paper"
        assert len(scale.datasets) == 8

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(KeyError):
            bench_scale()


class TestExperimentRunner:
    def test_run_records_result(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        runner = ExperimentRunner()
        result = runner.run("Toy", ToyMatcher, "REL-HETER", seed=0)
        assert result.method == "Toy"
        assert 0.0 <= result.prf.f1 <= 100.0
        assert runner.results == [result]

    def test_resources_measured_on_request(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        runner = ExperimentRunner()
        result = runner.run("Toy", ToyMatcher, "REL-HETER",
                            measure_resources=True)
        assert result.resources is not None
        assert result.resources.wall_seconds > 0

    def test_count_view(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        runner = ExperimentRunner()
        view = runner.view_for("REL-HETER", count=10, seed=1)
        assert len(view.labeled) == 10

    def test_prf_grid_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        runner = ExperimentRunner()
        runner.run("Toy", ToyMatcher, "REL-HETER")
        grid = runner.as_prf_grid()
        assert "Toy" in grid and "REL-HETER" in grid["Toy"]
        assert len(grid["Toy"]["REL-HETER"]) == 3
