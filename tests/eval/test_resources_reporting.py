"""Tests for resource metering and table rendering."""

import time

import numpy as np
import pytest

from repro.eval.reporting import render_prf_table, render_series, render_table
from repro.eval.resources import (
    ResourceMeter, format_bytes, format_seconds,
)


class TestResourceMeter:
    def test_measures_wall_time(self):
        with ResourceMeter() as meter:
            time.sleep(0.05)
        assert meter.report.wall_seconds >= 0.05

    def test_tracing_off_by_default(self):
        with ResourceMeter() as meter:
            _ = [np.zeros(1000) for _ in range(100)]
        assert meter.report.peak_python_bytes == 0

    def test_tracks_allocation_peak_when_enabled(self):
        with ResourceMeter(trace_allocations=True) as meter:
            _ = [np.zeros(1000) for _ in range(100)]
        assert meter.report.peak_python_bytes > 100 * 1000 * 8 * 0.5

    def test_model_bytes_registered(self):
        with ResourceMeter() as meter:
            meter.add_model_bytes(num_parameters=1000, optimizer_copies=3)
            meter.add_bytes(500)
        assert meter.report.model_bytes == 1000 * 4 * 3 + 500

    def test_nested_tracemalloc_is_safe(self):
        with ResourceMeter(trace_allocations=True) as outer:
            with ResourceMeter(trace_allocations=True) as inner:
                pass
        assert outer.report is not None and inner.report is not None


class TestFormatting:
    @pytest.mark.parametrize("seconds,expected", [
        (26.6, "26.6s"), (444, "7.4m"), (7.4 * 60, "7.4m"),
        (51 * 3600, "51.0h"), (0, "0.0s"),
    ])
    def test_format_seconds(self, seconds, expected):
        assert format_seconds(seconds) == expected

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1)

    @pytest.mark.parametrize("n,expected", [
        (500, "500B"), (2048, "2.0K"), (6 * 1024**3, "6.0G"),
        (int(105.3 * 1024**2), "105.3M"),
    ])
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bbbb"], [["x", 1.23456], ["yy", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "1.2" in out and "2.0" in out

    def test_title_rule(self):
        out = render_table(["c"], [["v"]], title="Table 9")
        assert out.splitlines()[0] == "Table 9"
        assert out.splitlines()[1] == "======="

    def test_none_renders_dash(self):
        out = render_table(["c"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_decimals_parameter(self):
        out = render_table(["x"], [[3.14159]], decimals=3)
        assert "3.142" in out


class TestPaperShapes:
    def test_prf_table(self):
        out = render_prf_table(
            "Table 2", ["D1", "D2"],
            {"PromptEM": {"D1": (100.0, 99.0, 99.5)},
             "BERT": {"D1": (90.0, 80.0, 84.7), "D2": (50.0, 50.0, 50.0)}})
        assert "PromptEM" in out and "D2:F" in out
        # Missing cell renders as dash.
        assert out.splitlines()[-2].count("-") >= 3

    def test_series_table(self):
        out = render_series("Figure 3", "rate", [5, 10],
                            {"PromptEM": [90.0, 95.0], "Ditto": [70.0]})
        lines = out.splitlines()
        assert "rate" in lines[2]
        assert "Figure 3" in lines[0]
        # Short series padded with dashes.
        assert lines[-1].rstrip().endswith("-")
