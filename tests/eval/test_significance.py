"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.eval.significance import (
    BootstrapInterval, bootstrap_f1, paired_bootstrap_delta,
)


def noisy_predictions(rng, labels, flip_rate):
    preds = labels.copy()
    flips = rng.random(len(labels)) < flip_rate
    preds[flips] = 1 - preds[flips]
    return preds


class TestBootstrapF1:
    def test_perfect_predictions_tight_interval(self):
        labels = np.array([0, 1] * 30)
        interval = bootstrap_f1(labels, labels, num_samples=200)
        assert interval.point == 100.0
        assert interval.lower == 100.0 and interval.upper == 100.0
        assert 100.0 in interval

    def test_interval_contains_point(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=80)
        preds = noisy_predictions(rng, labels, 0.2)
        interval = bootstrap_f1(labels, preds, num_samples=300)
        assert interval.lower <= interval.point <= interval.upper
        assert interval.width > 0

    def test_smaller_test_set_wider_interval(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=200)
        preds = noisy_predictions(rng, labels, 0.2)
        wide = bootstrap_f1(labels[:30], preds[:30], num_samples=400)
        narrow = bootstrap_f1(labels, preds, num_samples=400)
        assert wide.width > narrow.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_f1([], [])
        with pytest.raises(ValueError):
            bootstrap_f1([1], [1], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_f1([1, 0], [1])

    def test_deterministic_given_seed(self):
        labels = np.array([0, 1] * 20)
        rng = np.random.default_rng(2)
        preds = noisy_predictions(rng, labels, 0.3)
        a = bootstrap_f1(labels, preds, seed=5)
        b = bootstrap_f1(labels, preds, seed=5)
        assert a == b


class TestPairedDelta:
    def test_clear_winner_small_p(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, size=150)
        good = noisy_predictions(rng, labels, 0.05)
        bad = noisy_predictions(rng, labels, 0.40)
        delta, p = paired_bootstrap_delta(labels, good, bad, num_samples=300)
        assert delta > 0
        assert p < 0.05

    def test_identical_predictions_p_one(self):
        labels = np.array([0, 1] * 25)
        delta, p = paired_bootstrap_delta(labels, labels, labels,
                                          num_samples=100)
        assert delta == 0.0
        assert p == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_delta([1, 0], [1], [1, 0])
