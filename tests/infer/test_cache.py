"""Tests for the encoding LRU cache."""

from repro.infer import EncodingCache


def test_miss_then_hit():
    cache = EncodingCache(capacity=4)
    calls = []
    value = cache.get_or_encode("a", lambda: calls.append("a") or 1)
    assert value == 1
    assert cache.misses == 1 and cache.hits == 0
    value = cache.get_or_encode("a", lambda: calls.append("a") or 2)
    assert value == 1  # cached, encoder not re-run
    assert calls == ["a"]
    assert cache.hits == 1
    assert cache.hit_rate == 0.5


def test_lru_bound_and_eviction_order():
    cache = EncodingCache(capacity=2)
    cache.get_or_encode("a", lambda: "A")
    cache.get_or_encode("b", lambda: "B")
    cache.get_or_encode("a", lambda: "A*")  # touch a: b is now LRU
    cache.get_or_encode("c", lambda: "C")   # evicts b
    assert len(cache) == 2
    assert cache.evictions == 1
    assert "b" not in cache and "a" in cache and "c" in cache


def test_zero_capacity_disables_caching():
    cache = EncodingCache(capacity=0)
    assert cache.get_or_encode("a", lambda: 1) == 1
    assert cache.get_or_encode("a", lambda: 2) == 2  # never stored
    assert len(cache) == 0
    assert cache.hits == 0 and cache.misses == 2


def test_clear_and_reset_counters():
    cache = EncodingCache(capacity=4)
    cache.get_or_encode("a", lambda: 1)
    cache.get_or_encode("a", lambda: 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1  # counters survive clear()
    cache.reset_counters()
    assert cache.hits == cache.misses == cache.evictions == 0


def test_hit_rate_empty():
    assert EncodingCache().hit_rate == 0.0


def test_capacity_boundary_no_premature_eviction():
    """Filling to exactly ``capacity`` evicts nothing; one more entry
    evicts exactly the least-recently-used one."""
    cache = EncodingCache(capacity=3)
    for key in "abc":
        cache.get_or_encode(key, lambda k=key: k.upper())
    assert len(cache) == 3 and cache.evictions == 0
    assert all(k in cache for k in "abc")
    cache.get_or_encode("d", lambda: "D")
    assert len(cache) == 3 and cache.evictions == 1
    assert "a" not in cache and all(k in cache for k in "bcd")


def test_negative_capacity_disables_like_zero():
    cache = EncodingCache(capacity=-5)
    assert cache.get_or_encode("a", lambda: 1) == 1
    assert len(cache) == 0 and cache.misses == 1 and cache.evictions == 0


def test_counters_dict_matches_attributes():
    cache = EncodingCache(capacity=1)
    cache.get_or_encode("a", lambda: 1)
    cache.get_or_encode("a", lambda: 1)
    cache.get_or_encode("b", lambda: 2)  # evicts a
    assert cache.counters() == {
        "hits": 1, "misses": 2, "evictions": 1, "entries": 1,
        "hit_rate": cache.hit_rate,
    }
    assert cache.counters()["hit_rate"] == 1 / 3


class TestThreadSafety:
    def test_interleaved_lookups_keep_counters_consistent(self):
        """Hammer one cache from several threads; the accounting invariant
        ``hits + misses == lookups`` must survive, and the entry count must
        never exceed capacity. Before the cache took a lock, interleaved
        ``+=`` on the counters lost updates and concurrent inserts could
        push the dict past its bound."""
        import threading

        cache = EncodingCache(capacity=64)
        lookups_per_thread = 2000
        threads_n = 4
        barrier = threading.Barrier(threads_n)
        errors = []

        def worker(seed):
            try:
                barrier.wait()
                for i in range(lookups_per_thread):
                    key = (seed * i) % 96  # some keys shared across threads
                    value = cache.get_or_encode(key, lambda k=key: k * 2)
                    assert value == key * 2
                    assert len(cache) <= 64
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in (1, 5, 7, 11)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        counters = cache.counters()
        assert counters["hits"] + counters["misses"] \
            == threads_n * lookups_per_thread
        assert counters["evictions"] <= counters["misses"]
        assert counters["entries"] <= 64

    def test_racing_misses_converge_to_one_value(self):
        """Two threads missing on the same key both get a value, but the
        cache keeps exactly one object for the key afterwards."""
        import threading

        cache = EncodingCache(capacity=8)
        release = threading.Event()
        results = []

        def slow_encode():
            release.wait(1.0)
            return object()

        def worker():
            results.append(cache.get_or_encode("k", slow_encode))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join()

        cached = cache.get_or_encode("k", lambda: object())
        assert len(results) == 2
        # whichever encode won the race, every caller got the kept object
        assert all(value is cached for value in results)
        assert cache.counters()["entries"] == 1
