"""Tests for the encoding LRU cache."""

from repro.infer import EncodingCache


def test_miss_then_hit():
    cache = EncodingCache(capacity=4)
    calls = []
    value = cache.get_or_encode("a", lambda: calls.append("a") or 1)
    assert value == 1
    assert cache.misses == 1 and cache.hits == 0
    value = cache.get_or_encode("a", lambda: calls.append("a") or 2)
    assert value == 1  # cached, encoder not re-run
    assert calls == ["a"]
    assert cache.hits == 1
    assert cache.hit_rate == 0.5


def test_lru_bound_and_eviction_order():
    cache = EncodingCache(capacity=2)
    cache.get_or_encode("a", lambda: "A")
    cache.get_or_encode("b", lambda: "B")
    cache.get_or_encode("a", lambda: "A*")  # touch a: b is now LRU
    cache.get_or_encode("c", lambda: "C")   # evicts b
    assert len(cache) == 2
    assert cache.evictions == 1
    assert "b" not in cache and "a" in cache and "c" in cache


def test_zero_capacity_disables_caching():
    cache = EncodingCache(capacity=0)
    assert cache.get_or_encode("a", lambda: 1) == 1
    assert cache.get_or_encode("a", lambda: 2) == 2  # never stored
    assert len(cache) == 0
    assert cache.hits == 0 and cache.misses == 2


def test_clear_and_reset_counters():
    cache = EncodingCache(capacity=4)
    cache.get_or_encode("a", lambda: 1)
    cache.get_or_encode("a", lambda: 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1  # counters survive clear()
    cache.reset_counters()
    assert cache.hits == cache.misses == cache.evictions == 0


def test_hit_rate_empty():
    assert EncodingCache().hit_rate == 0.0


def test_capacity_boundary_no_premature_eviction():
    """Filling to exactly ``capacity`` evicts nothing; one more entry
    evicts exactly the least-recently-used one."""
    cache = EncodingCache(capacity=3)
    for key in "abc":
        cache.get_or_encode(key, lambda k=key: k.upper())
    assert len(cache) == 3 and cache.evictions == 0
    assert all(k in cache for k in "abc")
    cache.get_or_encode("d", lambda: "D")
    assert len(cache) == 3 and cache.evictions == 1
    assert "a" not in cache and all(k in cache for k in "bcd")


def test_negative_capacity_disables_like_zero():
    cache = EncodingCache(capacity=-5)
    assert cache.get_or_encode("a", lambda: 1) == 1
    assert len(cache) == 0 and cache.misses == 1 and cache.evictions == 0


def test_counters_dict_matches_attributes():
    cache = EncodingCache(capacity=1)
    cache.get_or_encode("a", lambda: 1)
    cache.get_or_encode("a", lambda: 1)
    cache.get_or_encode("b", lambda: 2)  # evicts a
    assert cache.counters() == {
        "hits": 1, "misses": 2, "evictions": 1, "entries": 1,
        "hit_rate": cache.hit_rate,
    }
    assert cache.counters()["hit_rate"] == 1 / 3
