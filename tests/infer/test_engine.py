"""Tests for the batched inference engine.

Covers the three semantics-preservation guarantees: length-bucketed
batching returns probabilities identical to a naive single batch (in the
original input order), the encoding cache changes no results while
accounting hits/misses, and vectorized MC-Dropout matches the sequential
per-pass reference bit for bit.
"""

import numpy as np
import pytest

from repro.core import PromptModel, Verbalizer, make_template
from repro.core.uncertainty import select_pseudo_labels
from repro.data import load_dataset
from repro.infer import EngineConfig, InferenceEngine, pack_buckets
from repro.lm import load_pretrained

from ..core.dummies import ToyPairModel, toy_view


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="module")
def pairs():
    return load_dataset("REL-HETER").test[:12]


@pytest.fixture()
def prompt_model(backbone):
    lm, tok = backbone
    template = make_template("t1", tok, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    return model


def small_engine(**overrides):
    # tiny budget/batch so a dozen pairs split into several buckets
    kwargs = dict(token_budget=256, max_batch_pairs=4)
    kwargs.update(overrides)
    return InferenceEngine(EngineConfig(**kwargs))


class TestPackBuckets:
    def test_partition_covers_every_index_once(self):
        lengths = [5, 30, 12, 7, 30, 2, 18]
        buckets = pack_buckets(lengths, token_budget=64, max_batch_pairs=3)
        flat = np.sort(np.concatenate(buckets))
        np.testing.assert_array_equal(flat, np.arange(len(lengths)))

    def test_budget_and_cap_respected(self):
        lengths = list(range(1, 40))
        for bucket in pack_buckets(lengths, token_budget=64, max_batch_pairs=5):
            longest = max(lengths[i] for i in bucket)
            assert len(bucket) <= 5
            assert len(bucket) == 1 or len(bucket) * longest <= 64

    def test_overlong_sequence_runs_alone(self):
        buckets = pack_buckets([500, 3, 4], token_budget=64, max_batch_pairs=8)
        singletons = [b for b in buckets if len(b) == 1]
        assert any(b[0] == 0 for b in singletons)

    def test_empty(self):
        assert pack_buckets([], token_budget=64, max_batch_pairs=8) == []


class TestBucketedEquivalence:
    def test_matches_naive_single_batch(self, prompt_model, pairs):
        naive = prompt_model(pairs).numpy()
        bucketed = small_engine().predict_proba(prompt_model, pairs)
        np.testing.assert_allclose(bucketed, naive, atol=1e-6)

    def test_scatter_back_under_shuffled_input(self, prompt_model, pairs):
        engine = small_engine()
        base = engine.predict_proba(prompt_model, pairs)
        perm = np.random.default_rng(0).permutation(len(pairs))
        shuffled = engine.predict_proba(prompt_model,
                                        [pairs[i] for i in perm])
        np.testing.assert_allclose(shuffled, base[perm], atol=1e-6)

    def test_empty_input(self, prompt_model):
        probs = small_engine().predict_proba(prompt_model, [])
        assert probs.shape == (0, 2)
        assert probs.dtype == np.float32


class TestCacheAccounting:
    def test_second_sweep_all_hits(self, prompt_model, pairs):
        engine = small_engine()
        engine.predict_proba(prompt_model, pairs)
        assert engine.stats.cache_misses == len(pairs)
        assert engine.stats.cache_hits == 0
        engine.predict_proba(prompt_model, pairs)
        assert engine.stats.cache_hits == len(pairs)
        assert len(engine.cache) == len(pairs)
        assert engine.stats.cache_hit_rate == 0.5

    def test_cached_results_identical(self, prompt_model, pairs):
        engine = small_engine()
        cold = engine.predict_proba(prompt_model, pairs)
        warm = engine.predict_proba(prompt_model, pairs)
        np.testing.assert_array_equal(cold, warm)

    def test_same_id_different_content_re_encodes(self, prompt_model, pairs):
        """Cache keys are content-addressed: a record replaced under the
        same id (the serving catalog supports this) must miss, not hit the
        stale entry."""
        from repro.data.dataset import CandidatePair
        from repro.data.records import EntityRecord

        engine = small_engine()
        original = pairs[0]
        replaced = CandidatePair(
            original.left,
            EntityRecord(record_id=original.right.record_id,
                         kind=original.right.kind,
                         values=dict(pairs[1].right.values)))
        engine.predict_proba(prompt_model, [original])
        assert engine.stats.cache_misses == 1
        fresh = engine.predict_proba(prompt_model, [replaced])
        assert engine.stats.cache_misses == 2  # new content re-encoded
        expected = small_engine().predict_proba(prompt_model, [replaced])
        np.testing.assert_array_equal(fresh, expected)

    def test_stats_dict_keys(self, prompt_model, pairs):
        engine = small_engine()
        engine.predict_proba(prompt_model, pairs)
        stats = engine.stats_dict()
        assert stats["pairs"] == len(pairs)
        assert stats["batches"] >= 2  # tiny budget forces multiple buckets
        assert stats["pairs_per_sec"] > 0
        assert 0.0 <= stats["padding_fraction"] < 1.0
        engine.reset_stats()
        assert engine.stats_dict()["pairs"] == 0


class TestVectorizedMCDropout:
    def test_matches_sequential(self, prompt_model, pairs):
        engine = small_engine()
        prompt_model.train()
        fast = engine.mc_dropout_proba(prompt_model, pairs, passes=4, seed=3)
        slow = engine.mc_dropout_proba(prompt_model, pairs, passes=4, seed=3,
                                       vectorized=False)
        assert fast.shape == (4, len(pairs), 2)
        np.testing.assert_allclose(fast, slow, atol=1e-6)

    def test_passes_differ(self, prompt_model, pairs):
        stacked = small_engine().mc_dropout_proba(prompt_model, pairs,
                                                  passes=3, seed=0)
        assert not np.allclose(stacked[0], stacked[1])

    def test_restores_train_mode(self, prompt_model, pairs):
        prompt_model.eval()
        small_engine().mc_dropout_proba(prompt_model, pairs[:4], passes=2)
        assert not prompt_model.training

    def test_rejects_zero_passes(self, prompt_model, pairs):
        with pytest.raises(ValueError):
            small_engine().mc_dropout_proba(prompt_model, pairs, passes=0)

    def test_empty_input(self, prompt_model):
        stacked = small_engine().mc_dropout_proba(prompt_model, [], passes=3)
        assert stacked.shape == (3, 0, 2)
        assert stacked.dtype == np.float32


class TestFallbackPath:
    """Models without the encoding protocol still work via model(batch)."""

    @pytest.fixture(scope="class")
    def view(self):
        return toy_view(n=80, labeled=20, seed=0)

    def test_predict_matches_direct_forward(self, view):
        model = ToyPairModel()
        model.eval()
        direct = model(view.test).numpy()
        engine = InferenceEngine(EngineConfig(max_batch_pairs=8))
        np.testing.assert_allclose(engine.predict_proba(model, view.test),
                                   direct, atol=1e-6)
        assert len(engine.cache) == 0  # no encode_pair, nothing cached

    def test_vectorized_matches_sequential(self, view):
        model = ToyPairModel(dropout=0.4)
        engine = InferenceEngine(EngineConfig(max_batch_pairs=16))
        fast = engine.mc_dropout_proba(model, view.test, passes=5, seed=1)
        slow = engine.mc_dropout_proba(model, view.test, passes=5, seed=1,
                                       vectorized=False)
        np.testing.assert_allclose(fast, slow, atol=1e-6)

    def test_selected_pseudo_labels_identical(self, view):
        # end-to-end: engine-driven selection picks the same pairs and
        # labels as a second engine run (determinism across engines)
        model = ToyPairModel(dropout=0.3)
        kwargs = dict(ratio=0.3, passes=6, strategy="uncertainty")
        a = select_pseudo_labels(
            model, view.unlabeled,
            engine=InferenceEngine(EngineConfig(base_seed=5)), **kwargs)
        b = select_pseudo_labels(
            model, view.unlabeled,
            engine=InferenceEngine(EngineConfig(base_seed=5)), **kwargs)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.pseudo_labels, b.pseudo_labels)
