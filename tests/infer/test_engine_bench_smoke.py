"""Tier-1 smoke pass over the engine benchmark logic.

Runs :func:`benchmarks.bench_inference_engine.run_engine_comparison` on the
tiny cached backbone and checks its structural outputs -- throughput
numbers exist, the engine's probabilities match the seed-style loop --
WITHOUT asserting anything about wall-clock speed, so the test is stable
on loaded CI machines. The real timing comparison lives in
``benchmarks/bench_inference_engine.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_inference_engine import (  # noqa: E402
    run_engine_comparison, seed_style_mc_dropout,
)
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402


@pytest.mark.smoke
def test_engine_benchmark_smoke():
    lm, tok = load_pretrained("minilm-tiny")
    template = make_template("t1", tok, max_len=64)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    pairs = load_dataset("REL-HETER").test[:10]

    result = run_engine_comparison(model, pairs, passes=5,
                                   token_budget=1024, iterations=1)
    assert result["pairs"] == 10 and result["passes"] == 5
    assert result["baseline_pps"] > 0 and result["engine_pps"] > 0
    assert result["batches"] >= 1
    assert 0.0 <= result["padding_fraction"] < 1.0
    assert result["cache_hit_rate"] > 0.0  # predict reuses the MC encodings
    # eval-mode equivalence between seed loop and bucketed engine
    assert result["max_abs_diff"] < 1e-6

    stacked = seed_style_mc_dropout(model, pairs, passes=5)
    assert stacked.shape == (5, 10, 2)
    assert not model.training  # mode restored
