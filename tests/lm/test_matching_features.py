"""Tests for the scale-bridging features: duplicate flags + matched heads."""

import numpy as np
import pytest

from repro.autograd import MultiHeadAttention, Tensor
from repro.lm import LMConfig, MiniLM


class TestDuplicateFlags:
    def test_repeated_tokens_flagged(self):
        ids = np.array([[2, 10, 11, 3, 10, 12]])
        flags = MiniLM.duplicate_flags(ids)
        np.testing.assert_array_equal(flags, [[0, 1, 0, 0, 1, 0]])

    def test_special_tokens_never_flagged(self):
        # [CLS]=2 and [SEP]=3 repeat but ids < 7 are specials.
        ids = np.array([[2, 3, 2, 3, 2, 3]])
        flags = MiniLM.duplicate_flags(ids)
        np.testing.assert_array_equal(flags, np.zeros((1, 6)))

    def test_padding_never_flagged(self):
        ids = np.array([[10, 0, 0, 0]])
        flags = MiniLM.duplicate_flags(ids)
        np.testing.assert_array_equal(flags, np.zeros((1, 4)))

    def test_per_row_independence(self):
        ids = np.array([[10, 11], [10, 10]])
        flags = MiniLM.duplicate_flags(ids)
        np.testing.assert_array_equal(flags, [[0, 0], [1, 1]])

    def test_flags_change_encoding(self):
        cfg = LMConfig(vocab_size=30, d_model=16, num_layers=1, num_heads=2,
                       d_ff=32, max_len=10, dropout=0.0)
        model = MiniLM(cfg)
        model.eval()
        with_dup = model.encode(np.array([[2, 10, 10, 3]])).numpy()
        without = model.encode(np.array([[2, 10, 11, 3]])).numpy()
        assert not np.allclose(with_dup[0, 1], without[0, 1])


class TestMatchedHeads:
    def test_matched_head_qk_identical_at_init(self):
        rng = np.random.default_rng(0)
        attn = MultiHeadAttention(8, 2, rng=rng, matched_heads=1)
        d_head = 4
        np.testing.assert_array_equal(
            attn.q_proj.weight.numpy()[:, :d_head],
            attn.k_proj.weight.numpy()[:, :d_head])
        # The unmatched head differs.
        assert not np.allclose(attn.q_proj.weight.numpy()[:, d_head:],
                               attn.k_proj.weight.numpy()[:, d_head:])

    def test_matched_heads_bounds(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(8, 2, matched_heads=3)

    def test_lmconfig_default_has_matched_heads(self):
        assert LMConfig(vocab_size=10).matched_heads == 2

    def test_matched_head_attends_to_duplicates(self):
        """With matched Q/K, a token's attention score to its twin exceeds
        its score to an unrelated token (before training)."""
        rng = np.random.default_rng(1)
        d = 16
        attn = MultiHeadAttention(d, 1, rng=rng, matched_heads=1, dropout=0.0)
        attn.eval()
        tok_a = rng.standard_normal(d)
        tok_b = rng.standard_normal(d)
        tok_c = rng.standard_normal(d)
        x = Tensor(np.stack([tok_a, tok_b, tok_a, tok_c])[None])
        q = (x @ attn.q_proj.weight + attn.q_proj.bias).numpy()[0]
        k = (x @ attn.k_proj.weight + attn.k_proj.bias).numpy()[0]
        twin_score = q[0] @ k[2]
        other_score = q[0] @ k[3]
        assert twin_score > other_score
