"""Tests for the MiniLM encoder and batching helpers."""

import numpy as np
import pytest

from repro.lm import LMConfig, MiniLM, pad_batch


@pytest.fixture(scope="module")
def model():
    return MiniLM(LMConfig(vocab_size=50, d_model=16, num_layers=1,
                           num_heads=2, d_ff=32, max_len=20, dropout=0.0))


class TestLMConfig:
    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            LMConfig(vocab_size=10, d_model=10, num_heads=3)

    def test_invalid_vocab(self):
        with pytest.raises(ValueError):
            LMConfig(vocab_size=0)

    def test_invalid_dropout(self):
        with pytest.raises(ValueError):
            LMConfig(vocab_size=10, dropout=1.0)

    def test_roundtrip(self):
        cfg = LMConfig(vocab_size=99, d_model=32, num_heads=4)
        assert LMConfig.from_dict(cfg.to_dict()) == cfg


class TestMiniLM:
    def test_encode_shape(self, model):
        ids = np.array([[2, 8, 9, 3], [2, 8, 3, 0]])
        hidden = model.encode(ids)
        assert hidden.shape == (2, 4, 16)

    def test_mlm_logits_shape(self, model):
        ids = np.array([[2, 8, 9, 3]])
        logits = model.mlm_logits(model.encode(ids))
        assert logits.shape == (1, 4, 50)

    def test_pooled_shape(self, model):
        ids = np.array([[2, 8, 9, 3]])
        pooled = model.pooled(model.encode(ids))
        assert pooled.shape == (1, 16)
        assert (np.abs(pooled.numpy()) <= 1.0).all()

    def test_rejects_1d_ids(self, model):
        with pytest.raises(ValueError):
            model.embed(np.array([1, 2, 3]))

    def test_rejects_overlong_sequence(self, model):
        with pytest.raises(ValueError):
            model.embed(np.zeros((1, 21), dtype=np.int64))

    def test_padding_does_not_change_real_positions(self, model):
        model.eval()
        ids = np.array([[2, 8, 9, 3]])
        base = model.encode(ids).numpy()
        padded = np.array([[2, 8, 9, 3, 0, 0]])
        mask = padded == 0
        out = model.encode(padded, pad_mask=mask).numpy()
        np.testing.assert_allclose(base[0], out[0, :4], atol=1e-8)

    def test_tied_decoder_gradients_reach_embeddings_twice(self, model):
        model.train()
        ids = np.array([[2, 8, 9, 3]])
        logits = model.mlm_logits(model.encode(ids))
        logits.sum().backward()
        emb_grad = model.token_embedding.weight.grad
        assert emb_grad is not None
        # Tokens never used in the input still receive decoder-side gradient.
        assert np.abs(emb_grad[40]).sum() > 0
        model.zero_grad()
        model.eval()

    def test_deterministic_with_same_seed(self):
        cfg = LMConfig(vocab_size=30, d_model=16, num_layers=1, num_heads=2,
                       d_ff=32, max_len=10, dropout=0.0, seed=42)
        a, b = MiniLM(cfg), MiniLM(cfg)
        ids = np.array([[2, 5, 3]])
        np.testing.assert_array_equal(a.encode(ids).numpy(), b.encode(ids).numpy())


class TestPadBatch:
    def test_pads_to_longest(self):
        ids, mask = pad_batch([[1, 2, 3], [4]], pad_id=0)
        np.testing.assert_array_equal(ids, [[1, 2, 3], [4, 0, 0]])
        np.testing.assert_array_equal(mask, [[False, False, False],
                                             [False, True, True]])

    def test_max_len_truncates(self):
        ids, mask = pad_batch([[1, 2, 3, 4, 5]], max_len=3)
        assert ids.shape == (1, 3)
        np.testing.assert_array_equal(ids, [[1, 2, 3]])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            pad_batch([])
