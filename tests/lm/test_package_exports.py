"""Lazy-export guard of the repro.lm package: importing the
``repro.lm.pretrain`` submodule must not shadow the ``pretrain`` function,
while deliberate attribute assignment (monkeypatched stubs) must still
take effect instead of being silently dropped (REVIEW)."""

import importlib
import sys
import types

import repro.lm


def test_pretrain_stays_a_function_after_submodule_import():
    module = importlib.import_module("repro.lm.pretrain")
    assert isinstance(module, types.ModuleType)
    assert callable(repro.lm.pretrain)
    assert repro.lm.pretrain is module.pretrain


def test_monkeypatched_stub_module_is_honoured(monkeypatch):
    stub = types.ModuleType("stub_pretrain")
    stub.marker = "stubbed"
    monkeypatch.setattr(repro.lm, "pretrain", stub)
    assert repro.lm.pretrain is stub
    monkeypatch.undo()
    assert callable(repro.lm.pretrain)


def test_import_machinery_binding_still_skipped():
    importlib.import_module("repro.lm.pretrain")
    # simulate the import system re-binding the submodule onto the package
    repro.lm.pretrain = sys.modules["repro.lm.pretrain"]
    assert callable(repro.lm.pretrain)
