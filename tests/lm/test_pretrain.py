"""Tests for MLM masking and the pre-training loop."""

import numpy as np
import pytest

from repro.lm import (
    IGNORE_INDEX, LMConfig, MiniLM, PretrainConfig, mask_tokens, pretrain,
)
from repro.text import Tokenizer, build_corpus, build_vocab


@pytest.fixture(scope="module")
def tiny_setup():
    corpus = build_corpus(120, seed=0)
    vocab = build_vocab(corpus, max_words=400)
    cfg = LMConfig(vocab_size=len(vocab), d_model=16, num_layers=1,
                   num_heads=2, d_ff=32, max_len=64)
    return corpus, vocab, cfg


class TestMaskTokens:
    def _setup(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(10, 100, size=(8, 20)).astype(np.int64)
        pad = np.zeros_like(ids, dtype=bool)
        pad[:, 15:] = True
        ids[pad] = 0
        return ids, pad, rng

    def test_labels_only_at_masked_positions(self):
        ids, pad, rng = self._setup()
        masked, labels = mask_tokens(ids, pad, vocab_size=100, mask_id=4,
                                     special_ids=range(7), rng=rng)
        changed = labels != IGNORE_INDEX
        assert changed.any()
        # Labels hold original token values at selected positions.
        np.testing.assert_array_equal(labels[changed], ids[changed])

    def test_padding_never_masked(self):
        ids, pad, rng = self._setup()
        _, labels = mask_tokens(ids, pad, vocab_size=100, mask_id=4,
                                special_ids=range(7), rng=rng)
        assert (labels[pad] == IGNORE_INDEX).all()

    def test_special_tokens_never_masked(self):
        rng = np.random.default_rng(1)
        ids = np.full((4, 10), 2, dtype=np.int64)  # all [CLS]
        pad = np.zeros_like(ids, dtype=bool)
        _, labels = mask_tokens(ids, pad, vocab_size=100, mask_id=4,
                                special_ids=range(7), rng=rng)
        assert (labels == IGNORE_INDEX).all()

    def test_mask_rate_close_to_request(self):
        rng = np.random.default_rng(2)
        ids = rng.integers(10, 100, size=(64, 64)).astype(np.int64)
        pad = np.zeros_like(ids, dtype=bool)
        _, labels = mask_tokens(ids, pad, vocab_size=100, mask_id=4,
                                special_ids=range(7), rng=rng, mask_prob=0.15)
        rate = (labels != IGNORE_INDEX).mean()
        assert 0.10 < rate < 0.20

    def test_original_array_untouched(self):
        ids, pad, rng = self._setup()
        before = ids.copy()
        mask_tokens(ids, pad, vocab_size=100, mask_id=4,
                    special_ids=range(7), rng=rng)
        np.testing.assert_array_equal(ids, before)


class TestPretrain:
    def test_loss_decreases(self, tiny_setup):
        corpus, vocab, cfg = tiny_setup
        model = MiniLM(cfg)
        result = pretrain(model, Tokenizer(vocab), corpus,
                          PretrainConfig(epochs=3, batch_size=32, max_len=32,
                                         lr=2e-3, seed=0))
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_model_left_in_eval_mode(self, tiny_setup):
        corpus, vocab, cfg = tiny_setup
        model = MiniLM(cfg)
        pretrain(model, Tokenizer(vocab), corpus[:40],
                 PretrainConfig(epochs=1, batch_size=32, max_len=32))
        assert not model.training

    def test_empty_corpus_rejected(self, tiny_setup):
        _, vocab, cfg = tiny_setup
        with pytest.raises(ValueError):
            pretrain(MiniLM(cfg), Tokenizer(vocab), [],
                     PretrainConfig(epochs=1))

    def test_deterministic_given_seed(self, tiny_setup):
        corpus, vocab, cfg = tiny_setup
        runs = []
        for _ in range(2):
            model = MiniLM(cfg)
            result = pretrain(model, Tokenizer(vocab), corpus[:60],
                              PretrainConfig(epochs=1, batch_size=32,
                                             max_len=32, seed=7))
            runs.append(result.epoch_losses[0])
        # Same seed, same init -> same loss... up to dropout rng, which is
        # seeded per-module from the LM config, so runs match exactly.
        assert runs[0] == pytest.approx(runs[1])
