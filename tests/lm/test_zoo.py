"""Tests for the checkpoint zoo (uses the tiny spec and one shared cache)."""

import numpy as np
import pytest

from repro.lm import available_models, load_pretrained
from repro.lm.zoo import default_cache_dir


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One training run shared by the whole module."""
    path = tmp_path_factory.mktemp("zoo-cache")
    load_pretrained("minilm-tiny", cache_dir=path)
    return path


class TestZoo:
    def test_available_models(self):
        names = available_models()
        assert "minilm-base" in names and "minilm-tiny" in names

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            load_pretrained("bert-large", cache_dir=tmp_path)

    def test_checkpoint_files_written(self, cache_dir):
        assert (cache_dir / "minilm-tiny.npz").exists()
        assert (cache_dir / "minilm-tiny.vocab.json").exists()

    def test_cache_reload_consistency(self, cache_dir):
        model1, tok1 = load_pretrained("minilm-tiny", cache_dir=cache_dir)
        model2, tok2 = load_pretrained("minilm-tiny", cache_dir=cache_dir)
        assert tok1.vocab.tokens() == tok2.vocab.tokens()
        s1, s2 = model1.state_dict(), model2.state_dict()
        assert s1.keys() == s2.keys()
        for key in s1:
            np.testing.assert_array_equal(s1[key], s2[key])

    def test_reloaded_model_in_eval_mode(self, cache_dir):
        model, _ = load_pretrained("minilm-tiny", cache_dir=cache_dir)
        assert not model.training

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_pretrained_knows_label_words(self, cache_dir):
        """The MLM must assign measurable probability to label words in a
        cloze context -- the pre-trained knowledge PromptEM relies on."""
        model, tok = load_pretrained("minilm-tiny", cache_dir=cache_dir)
        vocab = tok.vocab
        enc = tok.encode("golden dragon restaurant golden dragon grill they are [MASK]",
                         max_len=32)
        ids = np.array([enc.ids])
        from repro.autograd import no_grad

        with no_grad():
            logits = model.mlm_logits(model.encode(ids)).numpy()[0]
        mask_pos = enc.tokens.index("[MASK]")
        probs = np.exp(logits[mask_pos] - logits[mask_pos].max())
        probs /= probs.sum()
        label_ids = [vocab.id_of(w) for w in
                     ("matched", "similar", "relevant",
                      "mismatched", "different", "irrelevant")]
        mass = probs[label_ids].sum()
        # Six words out of a ~1500-token vocabulary would carry ~0.4% mass
        # at random; requiring >2% demonstrates the cloze pattern was
        # genuinely learned during pre-training.
        assert mass > 0.02
