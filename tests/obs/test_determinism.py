"""Telemetry determinism: observing a run never changes it.

Two contracts (ISSUE acceptance criteria):

* **non-perturbation**: a fit under a full telemetry session produces
  final weights bit-identical to the same fit with telemetry off. The
  instruments consume no shared rng state (the quantile sketch has a
  private LCG) and never touch model math;
* **reproducibility**: two seeded runs of the same workload emit
  identical metric snapshots and event streams once wall-clock and
  process-identity fields are removed by :func:`repro.obs.strip_volatile`.

All runs reuse ONE model instance, restoring its initial ``state_dict``
between fits -- each ``Dropout`` draws a process-global ``seed_salt`` at
construction, so rebuilding the model would change the masks and hide (or
fake) a divergence.
"""

import numpy as np
import pytest

from repro.core import PromptModel, Verbalizer, make_template
from repro.core.trainer import Trainer, TrainerConfig
from repro.data import load_dataset
from repro.lm import load_pretrained
from repro.obs import read_events, strip_volatile, telemetry_session


@pytest.fixture(scope="module")
def prompt_model():
    lm, tok = load_pretrained("minilm-tiny")
    template = make_template("t1", tok, max_len=64)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    return model


@pytest.fixture(scope="module")
def view():
    return load_dataset("REL-HETER").low_resource(seed=0)


def fit_once(model, view, telemetry_path=None):
    """One seeded fit from the model's current weights; returns weights.

    ``workers=1`` engages the sharded session, whose dropout masks are
    plan-seeded by (seed, global step, shard) -- the only fit path that is
    bit-reproducible from a restored ``state_dict`` (the legacy loop's
    dropout modules draw from rng streams that advance across fits).
    """
    initial = {k: v.copy() for k, v in model.state_dict().items()}
    cfg = TrainerConfig(epochs=2, batch_size=8, seed=3, workers=1)
    try:
        if telemetry_path is None:
            Trainer(model, cfg).fit(view.labeled, valid=view.test[:8])
        else:
            with telemetry_session(path=telemetry_path, trace=True):
                Trainer(model, cfg).fit(view.labeled, valid=view.test[:8])
        return {k: v.copy() for k, v in model.state_dict().items()}
    finally:
        model.load_state_dict(initial)


class TestNonPerturbation:
    def test_weights_bit_identical_with_telemetry_on(self, prompt_model,
                                                     view, tmp_path):
        weights_off = fit_once(prompt_model, view)
        weights_on = fit_once(prompt_model, view,
                              telemetry_path=tmp_path / "on.jsonl")
        assert weights_off.keys() == weights_on.keys()
        for name in weights_off:
            np.testing.assert_array_equal(weights_off[name],
                                          weights_on[name], err_msg=name)

    def test_numpy_global_rng_untouched_by_instruments(self):
        state = np.random.get_state()[1].copy()
        with telemetry_session() as tel:
            tel.metrics.counter("c").inc()
            tel.metrics.histogram("h").observe(0.5)
            tel.metrics.quantiles("q").observe_many(float(v)
                                                   for v in range(2000))
            with tel.span("s"):
                pass
        assert np.array_equal(np.random.get_state()[1], state)


class TestReproducibility:
    def test_two_seeded_runs_identical_after_stripping(self, prompt_model,
                                                       view, tmp_path):
        streams = []
        snapshots = []
        for run in range(2):
            path = tmp_path / f"run{run}.jsonl"
            with telemetry_session(path=path, trace=True) as tel:
                fit_once(prompt_model, view)
                snapshots.append(strip_volatile(tel.snapshot_metrics()))
            streams.append([strip_volatile(e) for e in read_events(path)])
        assert snapshots[0] == snapshots[1]
        assert streams[0] == streams[1]

    def test_stripped_stream_still_carries_the_run(self, prompt_model, view,
                                                   tmp_path):
        """Stripping removes timing, not substance: losses, steps and span
        structure survive for diffing."""
        path = tmp_path / "run.jsonl"
        with telemetry_session(path=path, trace=True):
            fit_once(prompt_model, view)
        stripped = [strip_volatile(e) for e in read_events(path)]
        kinds = {e["kind"] for e in stripped}
        assert {"trainer.fit.start", "trainer.step", "trainer.epoch",
                "span", "metrics.snapshot"} <= kinds
        steps = [e for e in stripped if e["kind"] == "trainer.step"]
        assert all("loss" in e and "ts" not in e for e in steps)
        spans = [e for e in stripped if e["kind"] == "span"]
        assert all("path" in e and "wall" not in e for e in spans)
