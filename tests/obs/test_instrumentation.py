"""Integration tests: the core pipeline populates metrics and events."""

import pytest

from repro.core import PromptModel, Verbalizer, make_template
from repro.data import load_dataset
from repro.infer import EngineConfig, InferenceEngine
from repro.lm import load_pretrained
from repro.obs import read_events, telemetry_session
from repro.parallel import WorkerPool


@pytest.fixture(scope="module")
def prompt_model():
    lm, tok = load_pretrained("minilm-tiny")
    template = make_template("t1", tok, max_len=64)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    return model


@pytest.fixture(scope="module")
def pairs():
    return load_dataset("REL-HETER").test[:8]


class TestEngineStats:
    def test_stats_dict_carries_cache_counters(self, prompt_model, pairs):
        engine = InferenceEngine(EngineConfig(token_budget=256,
                                              max_batch_pairs=4))
        engine.predict_proba(prompt_model, pairs)
        engine.predict_proba(prompt_model, pairs)  # second run hits the cache
        stats = engine.stats_dict()
        assert stats["cache_hits"] == len(pairs)
        assert stats["cache_misses"] == len(pairs)
        assert stats["cache_hit_rate"] == pytest.approx(0.5)
        assert stats["cache_evictions"] == 0
        assert stats["pairs"] == 2 * len(pairs)

    def test_eviction_counter_reaches_stats(self, prompt_model, pairs):
        engine = InferenceEngine(EngineConfig(token_budget=256,
                                              max_batch_pairs=4,
                                              cache_capacity=4))
        engine.predict_proba(prompt_model, pairs)  # 8 pairs through 4 slots
        assert engine.stats.cache_evictions == engine.cache.evictions > 0
        assert engine.stats_dict()["cache_evictions"] > 0

    def test_registry_gauges_and_counters(self, prompt_model, pairs):
        with telemetry_session() as tel:
            engine = InferenceEngine(EngineConfig(token_budget=256,
                                                  max_batch_pairs=4))
            engine.predict_proba(prompt_model, pairs)
            engine.predict_proba(prompt_model, pairs)
        snap = tel.snapshot_metrics()
        assert snap["engine.pairs"]["value"] == 2 * len(pairs)
        assert snap["engine.cache.hits"]["value"] == len(pairs)
        assert snap["engine.cache.misses"]["value"] == len(pairs)
        assert snap["engine.cache.hit_rate"]["value"] == pytest.approx(0.5)
        assert snap["engine.cache.entries"]["value"] == len(pairs)
        assert snap["engine.run_seconds"]["count"] == 2


def _double(task):
    return task * 2


class TestPoolTelemetry:
    def test_serial_map_records_latencies_and_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with telemetry_session(path=path) as tel:
            with WorkerPool(1, _double) as pool:
                assert pool.map([1, 2, 3]) == [2, 4, 6]
                assert len(pool.last_latencies) == 3
        events = read_events(path, kind="pool.map")
        assert len(events) == 1
        assert events[0]["tasks"] == 3
        assert events[0]["serial"] is True
        assert [row["tasks"] for row in events[0]["per_worker"]] == [3]
        snap = tel.snapshot_metrics()
        assert snap["pool.tasks"]["value"] == 3
        assert snap["pool.maps"]["value"] == 1
        assert snap["pool.task_seconds"]["count"] == 3

    def test_forked_map_merges_per_worker_latencies(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with telemetry_session(path=path):
            with WorkerPool(2, _double) as pool:
                assert pool.map(list(range(6))) == [0, 2, 4, 6, 8, 10]
                assert len(pool.last_latencies) == 6
                assert all(t >= 0 for t in pool.last_latencies)
        events = read_events(path, kind="pool.map")
        assert len(events) == 1
        record = events[0]
        assert record["tasks"] == 6
        per_worker = {row["worker"]: row for row in record["per_worker"]}
        if not record["serial"]:  # fork available: both workers saw tasks
            assert set(per_worker) == {0, 1}
            assert sum(row["tasks"] for row in per_worker.values()) == 6

    def test_disabled_telemetry_still_tracks_last_latencies(self):
        with WorkerPool(1, _double) as pool:
            pool.map([1, 2])
            assert len(pool.last_latencies) == 2
