"""Merging per-process MetricsRegistry snapshots into one pool view."""

import json

import pytest

from repro.obs import MetricsRegistry, merge_metric, merge_snapshots


def snapshots_of(*builders, include_samples=True):
    """Label -> snapshot for one registry per builder callable."""
    sources = {}
    for i, build in enumerate(builders):
        registry = MetricsRegistry()
        build(registry)
        sources[f"replica{i}"] = registry.snapshot(
            include_samples=include_samples)
    return sources


class TestCounterMerge:
    def test_values_sum_across_sources(self):
        sources = snapshots_of(
            lambda r: r.counter("serve.requests").inc(3),
            lambda r: r.counter("serve.requests").inc(4))
        merged = merge_snapshots(sources)
        assert merged["serve.requests"] == {"kind": "counter", "value": 7.0}

    def test_missing_in_one_source_is_fine(self):
        sources = snapshots_of(
            lambda r: r.counter("only.here").inc(),
            lambda r: r.counter("other").inc(2))
        merged = merge_snapshots(sources)
        assert merged["only.here"]["value"] == 1.0
        assert merged["other"]["value"] == 2.0


class TestGaugeMerge:
    def test_most_writes_wins_and_writes_sum(self):
        def busy(registry):
            gauge = registry.gauge("depth")
            gauge.set(1.0)
            gauge.set(2.0)
            gauge.set(8.0)

        sources = snapshots_of(lambda r: r.gauge("depth").set(3.0), busy)
        merged = merge_snapshots(sources)
        assert merged["depth"]["value"] == 8.0
        assert merged["depth"]["writes"] == 4

    def test_tie_breaks_on_label_order(self):
        sources = snapshots_of(lambda r: r.gauge("g").set(1.0),
                               lambda r: r.gauge("g").set(2.0))
        # equal writes: the lexically last label (replica1) owns the value
        assert merge_snapshots(sources)["g"]["value"] == 2.0


class TestHistogramMerge:
    def test_bucket_counts_add_over_union(self):
        sources = snapshots_of(
            lambda r: [r.histogram("lat", buckets=(1.0, 2.0)).observe(v)
                       for v in (0.5, 1.5)],
            lambda r: [r.histogram("lat", buckets=(1.0, 2.0)).observe(v)
                       for v in (0.7, 99.0)])
        merged = merge_snapshots(sources)["lat"]
        assert merged["buckets"] == {"1.0": 2, "2.0": 1}
        assert merged["count"] == 4
        assert merged["overflow"] == 1
        assert merged["min"] == 0.5 and merged["max"] == 99.0
        assert merged["mean"] == pytest.approx((0.5 + 1.5 + 0.7 + 99.0) / 4)


class TestQuantileMerge:
    def test_pooled_samples_make_exact_quantiles(self):
        sources = snapshots_of(
            lambda r: r.quantiles("q").observe_many(range(0, 50)),
            lambda r: r.quantiles("q").observe_many(range(50, 100)))
        merged = merge_snapshots(sources)["q"]
        assert merged["count"] == 100
        assert merged["p50"] == 50  # nearest-rank over the pooled reservoir
        assert merged["p99"] == 99

    def test_degrades_to_weighted_average_without_samples(self):
        sources = snapshots_of(
            lambda r: r.quantiles("q").observe_many(range(0, 50)),
            lambda r: r.quantiles("q").observe_many(range(50, 100)),
            include_samples=False)
        merged = merge_snapshots(sources)["q"]
        assert merged["count"] == 100
        # each source contributes its own p50 (24 and 74), equal weights
        assert merged["p50"] == pytest.approx((24 + 74) / 2, abs=2.0)


class TestTimerMerge:
    def test_counts_and_sums_add(self):
        def t(registry, values):
            timer = registry.timer("step")
            for value in values:
                timer.observe(value)

        sources = snapshots_of(lambda r: t(r, [1.0]),
                               lambda r: t(r, [2.0, 3.0]))
        merged = merge_snapshots(sources)["step"]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(6.0)
        assert merged["last"] == 3.0  # from the source with more counts


class TestConflicts:
    def test_kind_conflict_raises_strict(self):
        sources = snapshots_of(lambda r: r.counter("x").inc(),
                               lambda r: r.gauge("x").set(1.0))
        with pytest.raises(ValueError, match="conflicting kinds"):
            merge_snapshots(sources)

    def test_kind_conflict_annotated_lenient(self):
        sources = snapshots_of(lambda r: r.counter("x").inc(),
                               lambda r: r.gauge("x").set(1.0))
        merged = merge_snapshots(sources, strict=False)
        assert merged["x"]["kind"] == "conflict"
        assert merged["x"]["sources"] == ["replica0", "replica1"]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown kind"):
            merge_metric("m", [("a", {"kind": "sparkline"})])


class TestShape:
    def test_empty_sources_skipped(self):
        sources = snapshots_of(lambda r: r.counter("c").inc())
        sources["dead-replica"] = {}
        merged = merge_snapshots(sources)
        assert merged["c"]["value"] == 1.0

    def test_merged_snapshot_is_json_serializable(self):
        sources = snapshots_of(
            lambda r: (r.counter("c").inc(),
                       r.histogram("h").observe(0.1),
                       r.quantiles("q").observe(1.0),
                       r.timer("t").observe(0.5),
                       r.gauge("g").set(2.0)))
        json.dumps(merge_snapshots(sources))
