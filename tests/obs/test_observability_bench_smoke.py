"""Tier-1 smoke pass over the observability benchmark logic.

Runs :func:`benchmarks.bench_observability.run_overhead_comparison` on the
tiny cached backbone and checks its structural outputs -- every arm
reports a time and throughput, the micro bound is positive -- WITHOUT
asserting anything about the overhead percentages themselves, which are
hardware-bound and belong to ``benchmarks/bench_observability.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_observability import (  # noqa: E402
    measure_noop_ns, run_overhead_comparison,
)
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402
from repro.obs import DISABLED, get_telemetry  # noqa: E402


@pytest.mark.smoke
def test_observability_benchmark_smoke():
    lm, tok = load_pretrained("minilm-tiny")
    template = make_template("t1", tok, max_len=64)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    pairs = load_dataset("REL-HETER").low_resource(seed=0).labeled[:8]

    result = run_overhead_comparison(model, pairs, epochs=1, batch_size=8,
                                     repeats=1)
    assert result["pairs"] == 8 and result["steps"] > 0
    assert set(result["arms"]) == {"disabled", "metrics", "full"}
    for arm, stats in result["arms"].items():
        assert stats["seconds"] > 0, arm
        assert stats["steps_per_sec"] > 0, arm
        assert stats["steps"] == result["steps"], arm
    for arm in ("metrics", "full"):
        assert "overhead_pct" in result["arms"][arm]
    assert result["noop_ns"] > 0
    assert result["disabled_overhead_pct"] >= 0
    assert result["budget_pct"] == 2.0
    # the bench must leave no telemetry session installed
    assert get_telemetry() is DISABLED


@pytest.mark.smoke
def test_noop_micro_measurement_is_finite():
    noop_ns = measure_noop_ns(iterations=10_000)
    assert 0 < noop_ns < 1e6  # under a millisecond per op, by a huge margin
