"""Tests for the metric primitives and the registry."""

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_BUCKETS, MetricsRegistry, NULL_REGISTRY, QuantileSketch,
)


class TestCounter:
    def test_inc_and_snapshot(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.snapshot() == {"kind": "counter", "value": 3.5}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)


class TestGauge:
    def test_set_inc_writes(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)  # gauges may go down
        assert gauge.value == 2.5 and gauge.writes == 2


class TestHistogram:
    def test_bucketing(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"1.0": 2, "2.0": 1}  # bounds inclusive
        assert snap["overflow"] == 1
        assert snap["count"] == 4
        assert snap["min"] == 0.5 and snap["max"] == 99.0
        assert snap["mean"] == pytest.approx(102.0 / 4)

    def test_default_buckets_cover_latencies(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.bounds == tuple(sorted(DEFAULT_BUCKETS))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestQuantileSketch:
    def test_exact_below_capacity(self):
        sketch = QuantileSketch("q", max_samples=128)
        sketch.observe_many(range(100))
        assert sketch.quantile(0.0) == 0
        assert sketch.quantile(0.5) == 50
        assert sketch.quantile(1.0) == 99
        assert sketch.count == 100

    def test_reservoir_bounded_and_sane(self):
        sketch = QuantileSketch("q", max_samples=64)
        sketch.observe_many(float(v) for v in range(10_000))
        assert len(sketch._samples) == 64
        assert sketch.count == 10_000
        # a uniform subsample of 0..9999 keeps the median in the bulk
        assert 1_000 < sketch.quantile(0.5) < 9_000

    def test_deterministic_and_rng_free(self):
        """Same name + sequence -> same reservoir; numpy's global rng and
        the process hash seed play no part (metrics cannot perturb
        training and runs stay comparable)."""
        state_before = np.random.get_state()[1].copy()
        runs = []
        for _ in range(2):
            sketch = QuantileSketch("q", max_samples=32)
            sketch.observe_many(float(v) for v in range(1_000))
            runs.append(list(sketch._samples))
        assert runs[0] == runs[1]
        assert np.array_equal(np.random.get_state()[1], state_before)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            QuantileSketch("q", max_samples=0)
        with pytest.raises(ValueError):
            QuantileSketch("q").quantile(1.5)


class TestEwmaTimer:
    def test_first_observation_seeds_ewma(self):
        timer = MetricsRegistry().timer("t_seconds", alpha=0.5)
        timer.observe(1.0)
        assert timer.ewma == 1.0
        timer.observe(3.0)
        assert timer.ewma == pytest.approx(2.0)
        assert timer.count == 2 and timer.total == 4.0 and timer.last == 3.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert len(registry) == 1 and "x" in registry

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_sorted_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1)
        assert list(registry.snapshot()) == ["a", "b"]
        assert registry.names() == ("a", "b")
        registry.reset()
        assert len(registry) == 0 and registry.snapshot() == {}

    def test_null_registry_is_inert(self):
        for metric in (NULL_REGISTRY.counter("x"), NULL_REGISTRY.gauge("x"),
                       NULL_REGISTRY.histogram("x"),
                       NULL_REGISTRY.quantiles("x"), NULL_REGISTRY.timer("x")):
            metric.inc()
            metric.set(1.0)
            metric.observe(1.0)
            metric.observe_many([1.0])
            assert metric.quantile(0.5) == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert not NULL_REGISTRY.enabled
