"""repro.obs.report: section renderers over parsed telemetry streams,
including logs that interleave serving and training events."""

import json

from repro.obs import RunLog, read_events
from repro.obs.report import (
    group_events, render_drift, render_phases, render_report, render_slo,
    render_traces,
)


def span(index, name, wall, depth=0, parent=None, cpu=0.0):
    return {"schema": 1, "kind": "span", "ts": 0.0, "index": index,
            "name": name, "path": name, "depth": depth, "parent": parent,
            "wall": wall, "cpu": cpu}


def trace_event(request_id, tenant="_base", replica=0, wall=0.01):
    shares = {"admission": 0.1, "queue": 0.2, "batch": 0.1,
              "forward": 0.5, "respond": 0.1}
    return {"schema": 1, "kind": "serve.trace", "ts": 0.0,
            "request_id": request_id, "tenant": tenant, "replica": replica,
            "wall": wall,
            "spans": [{"name": name, "wall": wall * share}
                      for name, share in shares.items()]}


class TestInterleavedPhases:
    def test_repeated_indexes_split_into_streams(self):
        """Two tracers (a serving process and a training run) writing to
        one log restart span numbering; attribution must not cross."""
        events = [span(0, "fit", 2.0), span(1, "epoch", 1.5, 1, parent=0),
                  span(0, "serve", 3.0), span(1, "batch", 2.5, 1, parent=0)]
        out = render_phases(group_events(events))
        assert "stream 0" in out and "stream 1" in out
        # self time is computed within a stream: fit=2.0-1.5, serve=3.0-2.5
        assert "0.500s" in out
        # a cross-stream merge would subtract both children from parent 0
        assert "fit" in out and "serve" in out

    def test_single_stream_keeps_flat_layout(self):
        events = [span(0, "fit", 2.0), span(1, "epoch", 1.5, 1, parent=0)]
        out = render_phases(group_events(events))
        assert "stream" not in out
        assert any(line.startswith("fit") for line in out.splitlines())

    def test_missing_optional_fields_tolerated(self):
        ragged = [{"kind": "span", "name": "x", "index": 0},
                  {"kind": "span", "name": "x", "index": 0}]
        assert "x" in render_phases(group_events(ragged))


class TestServingSections:
    def test_traces_section_aggregates_and_samples(self):
        events = [trace_event(f"r{i:06d}", tenant="t1", replica=i % 2)
                  for i in range(6)]
        out = render_traces(group_events(events), samples=2)
        assert "6 requests" in out
        assert "forward" in out and "50.0%" in out
        assert "by replica: 0: 3, 1: 3" in out
        assert out.count("request r") == 2  # sample trees bounded

    def test_slo_section_reads_final_snapshot(self):
        snapshot = {
            "schema": 1, "kind": "serve.slo", "ts": 0.0,
            "objectives": {"latency_s": 0.25, "latency_quantile": 0.95,
                           "max_error_rate": 0.01, "max_shed_rate": 0.05,
                           "window": 512},
            "tenants": {"t1": {"requests": 9, "errors": 3, "sheds": 0,
                               "error_rate": 0.25, "shed_rate": 0.0,
                               "latency_q_seconds": 0.02, "ok": False}}}
        out = render_slo(group_events([snapshot]))
        assert "t1" in out and "VIOLATED" in out
        assert "p95" in out

    def test_drift_section_lists_events(self):
        events = [{"schema": 1, "kind": "serve.drift", "ts": 0.0,
                   "tenant": "t1", "drift_kind": "psi", "psi": 0.4,
                   "psi_threshold": 0.2}]
        out = render_drift(group_events(events))
        assert "psi=0.400" in out and "1 fired" in out

    def test_sections_absent_without_events(self):
        grouped = group_events([])
        assert render_traces(grouped) == ""
        assert render_slo(grouped) == ""
        assert render_drift(grouped) == ""


class TestFullReport:
    def test_mixed_log_renders_all_sections(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        with RunLog(path, clock=lambda: 1.0) as log:
            log.event("run.start", method="PromptEM", dataset="d",
                      seed=0, labeled=1, unlabeled=1, test=1)
            log.event("trainer.epoch", epoch=0, loss=0.5, steps=3)
            log.event("span", name="fit", path="fit", depth=0, wall=1.0,
                      cpu=0.5, index=0, parent=None)
            tree = trace_event("r000001")
            for key in ("schema", "kind", "ts"):
                tree.pop(key)
            log.event("serve.trace", **tree)
            log.event("serve.drift", tenant="_base", drift_kind="psi",
                      psi=0.3, psi_threshold=0.2)
            log.event("span", name="serve", path="serve", depth=0,
                      wall=2.0, cpu=0.1, index=0, parent=None)
            log.event("run.summary", f1=90.0)
        report = render_report(read_events(path))
        for needle in ("run: PromptEM", "Loss curve", "Request traces",
                       "Drift events", "stream 0", "stream 1"):
            assert needle in report

    def test_report_is_plain_text(self):
        events = [trace_event("r000001")]
        json.dumps(render_report(events))  # str in, str out
