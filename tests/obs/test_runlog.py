"""Tests for the JSONL run log, schema validation and volatile stripping."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    EVENT_FIELDS, RunLog, SCHEMA_VERSION, is_volatile_field, iter_events,
    read_events, strip_volatile, validate_record,
)


class TestRunLog:
    def test_writes_envelope_and_payload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path, clock=lambda: 12.0) as log:
            record = log.event("trainer.step", step=0, epoch=0, loss=0.5)
        assert record["schema"] == SCHEMA_VERSION
        assert record["ts"] == 12.0
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == record

    def test_file_like_target_not_closed(self):
        buffer = io.StringIO()
        log = RunLog(buffer)
        log.event("custom.kind", value=1)
        log.close()
        assert log.closed
        assert not buffer.closed  # caller-owned handle survives
        assert json.loads(buffer.getvalue())["kind"] == "custom.kind"

    def test_numpy_payloads_coerced(self):
        buffer = io.StringIO()
        RunLog(buffer).event("custom", scalar=np.float32(0.5),
                             array=np.arange(3), n=np.int64(7))
        record = json.loads(buffer.getvalue())
        assert record["scalar"] == 0.5
        assert record["array"] == [0, 1, 2]
        assert record["n"] == 7

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="missing fields"):
            RunLog(io.StringIO()).event("trainer.step", step=0)

    def test_unknown_kind_is_legal(self):
        record = RunLog(io.StringIO()).event("made.up.kind", whatever=1)
        assert validate_record(record)

    def test_records_written_counts(self):
        log = RunLog(io.StringIO())
        log.event("a")
        log.event("b")
        assert log.records_written == 2


class TestValidation:
    def test_envelope_enforced(self):
        with pytest.raises(ValueError, match="schema"):
            validate_record({"kind": "x", "ts": 1.0})
        with pytest.raises(ValueError, match="kind"):
            validate_record({"schema": SCHEMA_VERSION, "ts": 1.0})
        with pytest.raises(ValueError, match="ts"):
            validate_record({"schema": SCHEMA_VERSION, "kind": "x"})
        with pytest.raises(ValueError, match="object"):
            validate_record([1, 2])

    def test_every_registered_kind_has_fields(self):
        for kind, fields in EVENT_FIELDS.items():
            assert fields, kind
            record = {"schema": SCHEMA_VERSION, "kind": kind, "ts": 0.0}
            record.update({f: 0 for f in fields})
            assert validate_record(record)


class TestReadEvents:
    def test_roundtrip_and_kind_filter(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.event("trainer.step", step=0, epoch=0, loss=1.0)
            log.event("trainer.epoch", epoch=0, loss=1.0, steps=1)
            log.event("trainer.step", step=1, epoch=0, loss=0.9)
        assert len(read_events(path)) == 3
        steps = read_events(path, kind="trainer.step")
        assert [e["step"] for e in steps] == [0, 1]

    def test_iterable_of_lines_and_blank_lines(self):
        lines = ['{"schema": 1, "kind": "x", "ts": 0.0}', "", "  "]
        assert len(list(iter_events(lines))) == 1

    def test_validation_errors_surface(self):
        with pytest.raises(ValueError):
            read_events(['{"schema": 99, "kind": "x", "ts": 0.0}'])
        assert read_events(['{"schema": 99, "kind": "x", "ts": 0.0}'],
                           validate=False)


class TestVolatile:
    def test_field_classification(self):
        for name in ("ts", "wall", "cpu", "fingerprint", "run_seconds",
                     "tokens_per_sec", "elapsed"):
            assert is_volatile_field(name), name
        for name in ("loss", "step", "epoch", "f1", "tokens"):
            assert not is_volatile_field(name), name

    def test_strip_recurses_and_copies(self):
        record = {"ts": 1.0, "loss": 0.5,
                  "nested": {"wall": 2.0, "steps": 3,
                             "rows": [{"seconds": 1.0, "worker": 0}]}}
        stripped = strip_volatile(record)
        assert stripped == {"loss": 0.5,
                            "nested": {"steps": 3, "rows": [{"worker": 0}]}}
        assert record["ts"] == 1.0  # original untouched
