"""Units for the serving observability layer: trace stitching, the
request tracer ring, per-tenant SLO accounting and the drift monitor."""

import pytest

from repro.obs import (
    TRACE_STAGES, DriftConfig, DriftMonitor, RequestTracer, SloObjectives,
    SloTracker, TraceContext, format_trace, stitch_trace,
)


class TestStitchTrace:
    def make_ctx(self):
        ctx = TraceContext.admit(tenant="t1", now=10.0)
        ctx.dispatched(replica=1, now=10.002)
        return ctx

    def test_stage_walls_add_up_to_total(self):
        tree = stitch_trace(self.make_ctx(), t_done=10.020,
                            queue_seconds=0.004, batch_seconds=0.002,
                            forward_seconds=0.008, batch_id=7, batch_size=3)
        spans = {span["name"]: span["wall"] for span in tree["spans"]}
        assert tuple(s["name"] for s in tree["spans"]) == TRACE_STAGES
        assert spans["admission"] == pytest.approx(0.002)
        assert spans["queue"] == pytest.approx(0.004)
        assert spans["batch"] == pytest.approx(0.002)
        assert spans["forward"] == pytest.approx(0.008)
        # respond absorbs the unaccounted remainder (pipe transit, merge)
        assert spans["respond"] == pytest.approx(0.004)
        assert tree["wall"] == pytest.approx(0.020)
        assert tree["tenant"] == "t1" and tree["replica"] == 1
        assert tree["batch_id"] == 7 and tree["batch_size"] == 3

    def test_clock_skew_clamps_to_zero(self):
        # replica-reported stage times exceeding the parent-observed total
        # must not produce a negative respond span
        tree = stitch_trace(self.make_ctx(), t_done=10.004,
                            queue_seconds=0.5, forward_seconds=0.5)
        respond = tree["spans"][-1]
        assert respond["name"] == "respond" and respond["wall"] == 0.0

    def test_forward_cpu_rides_on_forward_span(self):
        tree = stitch_trace(self.make_ctx(), t_done=10.01,
                            forward_seconds=0.005,
                            forward_cpu_seconds=0.004)
        forward = tree["spans"][3]
        assert forward["name"] == "forward"
        assert forward["cpu"] == pytest.approx(0.004)

    def test_base_traffic_gets_base_label_and_fresh_ids(self):
        a = TraceContext.admit(now=0.0)
        b = TraceContext.admit(now=0.0)
        assert a.request_id != b.request_id
        assert stitch_trace(a, t_done=0.0)["tenant"] == "_base"

    def test_format_trace_renders_every_stage(self):
        lines = format_trace(stitch_trace(self.make_ctx(), t_done=10.02))
        assert "tenant=t1" in lines[0] and "replica=1" in lines[0]
        assert len(lines) == 1 + len(TRACE_STAGES)


class TestRequestTracer:
    def tree(self, tenant="t1", replica=0, wall=0.01):
        ctx = TraceContext.admit(tenant=tenant, now=0.0)
        ctx.dispatched(replica, now=0.0)
        return stitch_trace(ctx, t_done=wall)

    def test_aggregates_survive_ring_wrap(self):
        tracer = RequestTracer(capacity=2)
        for _ in range(5):
            tracer.record(self.tree(wall=0.01))
        agg = tracer.aggregate()
        assert agg["requests"] == 5  # lifetime, not ring size
        assert len(tracer.recent(10)) == 2
        assert agg["mean_wall_seconds"] == pytest.approx(0.01)

    def test_attribution_by_replica_and_tenant(self):
        tracer = RequestTracer()
        tracer.record(self.tree(tenant="a", replica=0))
        tracer.record(self.tree(tenant="b", replica=1))
        tracer.record(self.tree(tenant="b", replica=1))
        agg = tracer.aggregate()
        assert agg["by_replica"] == {"0": 1, "1": 2}
        assert agg["by_tenant"] == {"a": 1, "b": 2}

    def test_snapshot_bounds_samples(self):
        tracer = RequestTracer()
        for _ in range(10):
            tracer.record(self.tree())
        assert len(tracer.snapshot(samples=3)["samples"]) == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RequestTracer(capacity=0)


class TestSloTracker:
    def test_latency_quantile_against_objective(self):
        slo = SloTracker(SloObjectives(latency_s=0.1,
                                       latency_quantile=0.5, window=16))
        for latency in (0.01, 0.02, 0.03):
            slo.observe("t", latency)
        snap = slo.snapshot()["tenants"]["t"]
        assert snap["latency_ok"] and snap["ok"]
        for latency in (0.5,) * 6:
            slo.observe("t", latency)
        snap = slo.snapshot()["tenants"]["t"]
        assert snap["latency_q_seconds"] >= 0.1
        assert not snap["latency_ok"] and not snap["ok"]

    def test_shed_and_error_rates_over_attempted(self):
        slo = SloTracker(SloObjectives(max_shed_rate=0.05))
        for _ in range(8):
            slo.observe("t", 0.001)
        slo.observe_shed("t", 2)
        snap = slo.snapshot()["tenants"]["t"]
        assert snap["shed_rate"] == pytest.approx(2 / 10)
        assert not snap["shed_ok"] and not snap["ok"]
        assert snap["error_ok"]

    def test_base_traffic_tracks_under_base_label(self):
        slo = SloTracker()
        slo.observe(None, 0.01)
        assert "_base" in slo.snapshot()["tenants"]

    def test_objectives_validated(self):
        with pytest.raises(ValueError):
            SloObjectives(latency_quantile=1.5)
        with pytest.raises(ValueError):
            SloObjectives(window=0)


class TestDriftMonitor:
    CFG = DriftConfig(reference_size=32, window=32, psi_threshold=0.2,
                      match_rate_tolerance=0.25)

    @staticmethod
    def feed(monitor, scores, tenant="t", version="b@1"):
        fired = []
        for score in scores:
            fired += monitor.observe(tenant, [score],
                                     [1 if score >= 0.5 else 0],
                                     version=version)
        return fired

    def test_stationary_traffic_never_fires(self):
        monitor = DriftMonitor(self.CFG)
        scores = [0.1 + 0.005 * (i % 10) for i in range(200)]
        assert self.feed(monitor, scores) == []
        assert not monitor.active

    def test_shift_fires_within_one_window_rising_edge_only(self):
        monitor = DriftMonitor(self.CFG)
        self.feed(monitor, [0.1] * 64)  # reference + a stationary window
        assert not monitor.active
        fired = self.feed(monitor, [0.9] * 32)  # exactly one window shifted
        kinds = sorted(event["drift_kind"] for event in fired)
        assert kinds == ["match_rate", "psi"]
        assert monitor.active
        # sustained shift: the edge already fired, no repeat events
        assert self.feed(monitor, [0.9] * 64) == []
        snap = monitor.snapshot()["tenants"]["t"]
        assert snap["active"] and snap["psi"] > 0.2

    def test_recovery_clears_active_and_rearms(self):
        monitor = DriftMonitor(self.CFG)
        self.feed(monitor, [0.1] * 64)
        assert self.feed(monitor, [0.9] * 32)
        assert self.feed(monitor, [0.1] * 64) == []  # back to reference
        assert not monitor.active
        assert self.feed(monitor, [0.9] * 32)  # re-armed: fires again

    def test_version_change_resets_reference(self):
        monitor = DriftMonitor(self.CFG)
        self.feed(monitor, [0.1] * 64)
        # the new bundle legitimately scores high: a fresh reference is
        # bootstrapped instead of comparing against the old model's scores
        fired = self.feed(monitor, [0.9] * 96, version="b@2")
        assert fired == []
        snap = monitor.snapshot()["tenants"]["t"]
        assert snap["version"] == "b@2" and not snap["active"]

    def test_tenants_are_independent(self):
        monitor = DriftMonitor(self.CFG)
        self.feed(monitor, [0.1] * 64, tenant="a")
        self.feed(monitor, [0.5] * 64, tenant="b")
        fired = self.feed(monitor, [0.9] * 32, tenant="a")
        assert fired and all(event["tenant"] == "a" for event in fired)
        assert not monitor.snapshot()["tenants"]["b"]["active"]

    def test_explicit_reference_skips_bootstrap(self):
        monitor = DriftMonitor(self.CFG)
        monitor.set_reference("t", [0.1] * 32, [0] * 32, version="b@1")
        fired = self.feed(monitor, [0.9] * 32)
        assert sorted(e["drift_kind"] for e in fired) == \
            ["match_rate", "psi"]

    def test_config_validated(self):
        with pytest.raises(ValueError):
            DriftConfig(buckets=1)
        with pytest.raises(ValueError):
            DriftConfig(window=0)
