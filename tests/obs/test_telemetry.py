"""Tests for the telemetry session: install/uninstall, events, spans."""

import io

from repro.obs import (
    DISABLED, MetricsRegistry, RunLog, Telemetry, fingerprint_digest,
    get_telemetry, install_telemetry, read_events, telemetry_session,
    uninstall_telemetry,
)
from repro.obs import span as module_span


class TestSessionLifecycle:
    def test_default_is_disabled(self):
        tel = get_telemetry()
        assert tel is DISABLED and not tel.enabled
        tel.event("anything", loss=1.0)  # no-op, no error
        with tel.span("anything") as inner:
            assert inner is None

    def test_install_uninstall_nest(self):
        outer = Telemetry()
        inner = Telemetry()
        previous = install_telemetry(outer)
        try:
            assert get_telemetry() is outer
            prev_inner = install_telemetry(inner)
            assert get_telemetry() is inner
            uninstall_telemetry(prev_inner)
            assert get_telemetry() is outer
        finally:
            uninstall_telemetry(previous)
        assert get_telemetry() is DISABLED

    def test_context_manager_restores_on_error(self, tmp_path):
        try:
            with telemetry_session(path=tmp_path / "t.jsonl"):
                assert get_telemetry().enabled
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_telemetry() is DISABLED

    def test_module_level_span_follows_session(self):
        with telemetry_session() as tel:
            with module_span("phase"):
                pass
        assert [s["name"] for s in tel.tracer.spans] == ["phase"]


class TestSessionOutput:
    def test_close_flushes_metrics_snapshot(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with telemetry_session(path=path) as tel:
            tel.metrics.counter("x").inc(3)
        events = read_events(path)
        assert events[-1]["kind"] == "metrics.snapshot"
        assert events[-1]["metrics"]["x"]["value"] == 3

    def test_trace_streams_span_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with telemetry_session(path=path, trace=True) as tel:
            with tel.span("outer"):
                with tel.span("inner"):
                    pass
        spans = read_events(path, kind="span")
        assert [s["name"] for s in spans] == ["inner", "outer"]

    def test_without_trace_spans_stay_in_memory(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with telemetry_session(path=path) as tel:
            with tel.span("quiet"):
                pass
        assert read_events(path, kind="span") == []
        assert [s["name"] for s in tel.tracer.spans] == ["quiet"]

    def test_session_without_path_collects_in_memory(self):
        with telemetry_session() as tel:
            tel.metrics.counter("x").inc()
            tel.event("ignored.kind", value=1)  # no runlog: dropped
        assert tel.runlog is None
        assert tel.snapshot_metrics()["x"]["value"] == 1

    def test_injected_registry_survives_session(self):
        registry = MetricsRegistry()
        with telemetry_session(metrics=registry) as tel:
            tel.metrics.counter("x").inc()
        assert registry.counter("x").value == 1

    def test_events_after_close_are_dropped(self):
        buffer = io.StringIO()
        session = Telemetry(runlog=RunLog(buffer))
        session.close()
        session.event("late.kind", value=1)  # silently dropped, no error
        assert "late.kind" not in buffer.getvalue()


class TestFingerprintDigest:
    def test_stable_within_process_and_short(self):
        value = ("layer", 12, 0.5)
        assert fingerprint_digest(value) == fingerprint_digest(value)
        assert len(fingerprint_digest(value)) == 16
        assert fingerprint_digest(value) != fingerprint_digest(("other",))
