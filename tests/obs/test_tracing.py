"""Tests for hierarchical span tracing."""

from repro.obs import NULL_SPAN, Tracer


class TestTracer:
    def test_nesting_paths_and_parents(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("epoch", epoch=0):
                pass
            with tracer.span("epoch", epoch=1):
                with tracer.span("validate"):
                    pass
        assert tracer.depth == 0
        by_index = sorted(tracer.spans, key=lambda s: s["index"])
        assert [s["path"] for s in by_index] == [
            "fit", "fit/epoch", "fit/epoch", "fit/epoch/validate"]
        assert [s["depth"] for s in by_index] == [0, 1, 1, 2]
        assert by_index[3]["parent"] == by_index[2]["index"]
        assert by_index[1]["epoch"] == 0 and by_index[2]["epoch"] == 1

    def test_children_close_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s["name"] for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert outer["wall"] >= inner["wall"]
        assert outer["cpu"] >= 0 and inner["cpu"] >= 0

    def test_exception_unwinds_stack(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.depth == 0
        assert len(tracer.spans) == 2

    def test_sink_streams_every_span(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s["name"] for s in seen] == ["b", "a"]

    def test_max_spans_bounds_memory_not_sink(self):
        seen = []
        tracer = Tracer(sink=seen.append, max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert len(seen) == 5  # the sink still saw everything

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans == [] and tracer.depth == 0 and tracer.dropped == 0

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span is None
