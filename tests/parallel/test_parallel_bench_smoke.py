"""Tier-1 smoke pass over the parallel benchmark logic.

Runs :func:`benchmarks.bench_parallel.run_parallel_comparison` on the tiny
cached backbone and checks its structural outputs -- every worker arm
reports throughput, the bit-parity divergence is exactly 0.0 -- WITHOUT
asserting anything about wall-clock scaling, which is core-count-bound
and belongs to ``benchmarks/bench_parallel.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_parallel import WORKER_COUNTS, run_parallel_comparison  # noqa: E402
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402


@pytest.mark.smoke
def test_parallel_benchmark_smoke():
    lm, tok = load_pretrained("minilm-tiny")
    template = make_template("t1", tok, max_len=64)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    pairs = load_dataset("REL-HETER").test[:10]

    result = run_parallel_comparison(model, pairs, passes=4,
                                     token_budget=512, iterations=1)
    assert result["pairs"] == 10 and result["passes"] == 4
    assert result["sequential_pps"] > 0
    assert set(result["arms"]) == set(WORKER_COUNTS)
    for workers, arm in result["arms"].items():
        assert arm["pairs_per_sec"] > 0, workers
        assert arm["speedup_vs_serial"] > 0, workers
        assert arm["speedup_vs_sequential"] > 0, workers
        # the contract the whole subsystem is built around: worker count
        # changes wall-clock, never bits
        assert arm["divergence"] == 0.0, workers
    assert not model.training  # mode restored
