"""Parallel/serial parity: worker count changes wall-clock, never bits.

Every test compares workers in {1, 2, 4} (plus a forced-serial run) on ONE
model instance, restoring its initial ``state_dict`` between training
runs. One instance matters: each ``Dropout`` module draws a process-global
``seed_salt`` at construction, so two identically-configured models built
in the same process have different plan-seeded masks -- reusing the
instance is what makes "same seeds, different worker count" the only
variable under test.
"""

import numpy as np
import pytest

from repro.core import PromptModel, Verbalizer, make_template
from repro.core.trainer import Trainer, TrainerConfig, evaluate_f1
from repro.core.uncertainty import select_pseudo_labels
from repro.data import load_dataset
from repro.infer import EngineConfig, InferenceEngine
from repro.lm import load_pretrained
from repro.parallel import force_serial

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("REL-HETER")


@pytest.fixture(scope="module")
def prompt_model(backbone):
    lm, tok = backbone
    template = make_template("t1", tok, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    return model


def engine_with(workers, **overrides):
    kwargs = dict(token_budget=256, max_batch_pairs=4, workers=workers)
    kwargs.update(overrides)
    return InferenceEngine(EngineConfig(**kwargs))


class TestInferenceParity:
    def test_predict_proba_identical_across_workers(self, prompt_model,
                                                    dataset):
        pairs = dataset.test[:12]
        reference = engine_with(1).predict_proba(prompt_model, pairs)
        for workers in WORKER_COUNTS[1:]:
            probs = engine_with(workers).predict_proba(prompt_model, pairs)
            np.testing.assert_array_equal(probs, reference)

    def test_mc_dropout_identical_across_workers(self, prompt_model, dataset):
        pairs = dataset.test[:12]
        reference = engine_with(1).mc_dropout_proba(prompt_model, pairs,
                                                    passes=4, seed=7)
        assert reference.shape == (4, 12, 2)
        for workers in WORKER_COUNTS[1:]:
            probs = engine_with(workers).mc_dropout_proba(
                prompt_model, pairs, passes=4, seed=7)
            np.testing.assert_array_equal(probs, reference)

    def test_forced_serial_matches_forked(self, prompt_model, dataset):
        pairs = dataset.test[:12]
        forked = engine_with(4).mc_dropout_proba(prompt_model, pairs,
                                                 passes=3, seed=0)
        with force_serial():
            serial = engine_with(4).mc_dropout_proba(prompt_model, pairs,
                                                     passes=3, seed=0)
        np.testing.assert_array_equal(serial, forked)

    def test_f1_identical_across_workers(self, prompt_model, dataset):
        pairs = dataset.test[:12]
        scores = {w: evaluate_f1(prompt_model, pairs, engine=engine_with(w))
                  for w in WORKER_COUNTS}
        assert len(set(scores.values())) == 1

    def test_pseudo_label_indices_identical_across_workers(
            self, prompt_model, dataset):
        pool = (dataset.train + dataset.test)[:24]
        reference = select_pseudo_labels(prompt_model, pool, ratio=0.25,
                                         passes=4, seed=3,
                                         engine=engine_with(1))
        for workers in WORKER_COUNTS[1:]:
            selection = select_pseudo_labels(prompt_model, pool, ratio=0.25,
                                             passes=4, seed=3,
                                             engine=engine_with(workers))
            np.testing.assert_array_equal(selection.indices,
                                          reference.indices)
            np.testing.assert_array_equal(selection.pseudo_labels,
                                          reference.pseudo_labels)

    def test_workers_knob_without_engine(self, prompt_model, dataset):
        # the transient engine the knob builds must select the same indices
        # as an identically-configured single-worker engine (MC masks are a
        # function of the bucket shapes, so configs must match exactly)
        pool = (dataset.train + dataset.test)[:24]
        reference = select_pseudo_labels(
            prompt_model, pool, ratio=0.25, passes=4, seed=3,
            engine=InferenceEngine(EngineConfig(max_batch_pairs=32)))
        selection = select_pseudo_labels(prompt_model, pool, ratio=0.25,
                                         passes=4, seed=3, workers=2)
        np.testing.assert_array_equal(selection.indices, reference.indices)


class TestTrainingParity:
    def _fit_once(self, model, initial, train, valid, workers):
        model.load_state_dict(initial)
        if hasattr(model, "decision_threshold"):
            del model.decision_threshold
        cfg = TrainerConfig(epochs=2, batch_size=8, lr=5e-4, seed=0,
                            workers=workers)
        history = Trainer(model, cfg).fit(train, valid)
        weights = {k: v.copy() for k, v in model.state_dict().items()}
        return history, weights

    def test_trained_weights_identical_across_workers(self, prompt_model,
                                                      dataset):
        train = dataset.train[:16]
        valid = dataset.test[:8]
        initial = {k: v.copy() for k, v in prompt_model.state_dict().items()}

        runs = {}
        for workers in WORKER_COUNTS:
            runs[workers] = self._fit_once(prompt_model, initial, train,
                                           valid, workers)
        with force_serial():
            runs["serial"] = self._fit_once(prompt_model, initial, train,
                                            valid, 4)

        ref_history, ref_weights = runs[1]
        assert ref_history.steps > 0
        for key, (history, weights) in runs.items():
            assert history.losses == ref_history.losses, key
            assert history.valid_f1 == ref_history.valid_f1, key
            for name, value in ref_weights.items():
                np.testing.assert_array_equal(weights[name], value,
                                              err_msg=f"{key}:{name}")

    def test_legacy_path_untouched_when_workers_none(self, prompt_model,
                                                     dataset):
        train = dataset.train[:8]
        initial = {k: v.copy() for k, v in prompt_model.state_dict().items()}
        prompt_model.load_state_dict(initial)
        if hasattr(prompt_model, "decision_threshold"):
            del prompt_model.decision_threshold
        cfg = TrainerConfig(epochs=1, batch_size=8, lr=5e-4, seed=0)
        history = Trainer(prompt_model, cfg).fit(train)
        assert history.steps > 0
        prompt_model.load_state_dict(initial)
