"""Unit tests for the fork-based worker pool and deterministic sharding."""

import os

import numpy as np
import pytest

from repro.parallel import (
    FORCE_SERIAL_ENV, WorkerPool, effective_workers, force_serial,
    fork_available, shard_indices, shard_seed,
)


class TestShardIndices:
    def test_partition_is_exact_and_ordered(self):
        for n in (1, 2, 7, 16, 100):
            for shards in (1, 2, 3, 4, 7, 200):
                parts = shard_indices(n, shards)
                flat = np.concatenate(parts)
                np.testing.assert_array_equal(flat, np.arange(n))
                assert all(len(p) for p in parts)
                assert len(parts) <= min(shards, n)

    def test_near_equal_sizes(self):
        sizes = [len(p) for p in shard_indices(103, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_and_invalid(self):
        assert shard_indices(0, 4) == []
        with pytest.raises(ValueError):
            shard_indices(10, 0)

    def test_depends_only_on_n_and_shards(self):
        # the property gradient bit-parity rests on: the decomposition has
        # no third input a worker count could leak through
        a = shard_indices(37, 4)
        b = shard_indices(37, 4)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)


class TestShardSeed:
    def test_distinct_across_shards_and_steps(self):
        seeds = {shard_seed(0, s, t) for s in range(8) for t in range(8)}
        assert len(seeds) == 64

    def test_stable(self):
        assert shard_seed(3, 2, 1) == shard_seed(3, 2, 1)


class TestEffectiveWorkers:
    def test_none_and_small_values(self):
        assert effective_workers(None) == 1
        assert effective_workers(0) == 1
        assert effective_workers(1) == 1

    def test_force_serial_context(self):
        with force_serial():
            assert not fork_available()
            assert effective_workers(4) == 1

    def test_force_serial_env(self, monkeypatch):
        monkeypatch.setenv(FORCE_SERIAL_ENV, "1")
        assert not fork_available()
        assert effective_workers(4) == 1


class TestWorkerPool:
    def test_serial_pool_runs_inline(self):
        with WorkerPool(1, lambda x: x * 2) as pool:
            assert pool.serial
            assert pool.map(range(5)) == [0, 2, 4, 6, 8]

    def test_results_in_task_order(self):
        if not fork_available():
            pytest.skip("fork unavailable")
        with WorkerPool(4, lambda x: x * x) as pool:
            assert not pool.serial
            assert pool.map(range(11)) == [i * i for i in range(11)]

    def test_closure_state_inherited_by_fork(self):
        if not fork_available():
            pytest.skip("fork unavailable")
        payload = np.arange(10.0)

        def worker(idx):
            return float(payload[idx])

        with WorkerPool(2, worker) as pool:
            assert pool.map([3, 7]) == [3.0, 7.0]

    def test_worker_exception_propagates(self):
        if not fork_available():
            pytest.skip("fork unavailable")

        def worker(x):
            if x == 2:
                raise ValueError("boom")
            return x

        with WorkerPool(2, worker) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                pool.map(range(4))

    def test_force_serial_degrades_pool(self):
        with force_serial():
            with WorkerPool(4, lambda x: x + 1) as pool:
                assert pool.serial
                assert pool.map([1, 2]) == [2, 3]

    def test_close_is_idempotent(self):
        pool = WorkerPool(2, lambda x: x)
        pool.close()
        pool.close()
        assert pool.serial
