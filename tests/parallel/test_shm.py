"""Tests for shared-memory parameter broadcast and gradient boards."""

import numpy as np
import pytest

from repro.autograd import AdamW, Linear, SGD
from repro.parallel import (
    GradientBoard, ParameterPublisher, SharedArray, WorkerPool,
    fork_available,
)


def small_optimizer(seed=0):
    layer = Linear(6, 3, rng=np.random.default_rng(seed))
    return layer, AdamW(layer.parameters(), lr=0.01)


class TestSharedArray:
    def test_round_trip(self):
        with SharedArray((4, 3), np.float64) as shared:
            shared.array[:] = np.arange(12.0).reshape(4, 3)
            np.testing.assert_array_equal(
                shared.array, np.arange(12.0).reshape(4, 3))

    def test_zero_initialized(self):
        with SharedArray((5,), np.float32) as shared:
            assert not shared.array.any()

    def test_close_idempotent(self):
        shared = SharedArray((2,), np.float64)
        shared.close()
        shared.close()

    def test_writes_visible_across_fork(self):
        if not fork_available():
            pytest.skip("fork unavailable")
        with SharedArray((4,), np.float64) as shared:
            if not shared.is_shared:
                pytest.skip("no shared memory on this platform")
            array = shared.array

            def worker(task):
                index, value = task
                array[index] = value  # child writes into the inherited map
                return float(array[index])

            with WorkerPool(2, worker) as pool:
                pool.map([(0, 1.5), (1, 2.5), (2, 3.5), (3, 4.5)])
            np.testing.assert_array_equal(array, [1.5, 2.5, 3.5, 4.5])


class TestParameterPublisher:
    def test_publish_bumps_version_and_pull_copies(self):
        _, source = small_optimizer(seed=0)
        _, target = small_optimizer(seed=1)
        with ParameterPublisher(source, "fp") as publisher:
            assert publisher.version == 0
            assert publisher.publish(source) == 1
            assert publisher.pull(target, "fp")
            np.testing.assert_array_equal(target.flat_data, source.flat_data)
            # unchanged version: pull is a no-op
            assert not publisher.pull(target, "fp")

    def test_fingerprint_mismatch_raises(self):
        _, source = small_optimizer()
        with ParameterPublisher(source, "fp-a") as publisher:
            publisher.publish(source)
            with pytest.raises(ValueError, match="fingerprint"):
                publisher.pull(source, "fp-b")

    def test_size_mismatch_raises(self):
        _, source = small_optimizer()
        other = SGD(Linear(2, 2, rng=np.random.default_rng(0)).parameters(),
                    lr=0.1)
        with ParameterPublisher(source) as publisher:
            with pytest.raises(ValueError):
                publisher.publish(other)


class TestGradientBoard:
    def test_fixed_order_reduce(self):
        with GradientBoard(3, 4, np.float64) as board:
            for slot in range(3):
                board.slot(slot)[:] = (slot + 1) * np.arange(1.0, 5.0)
            # 1x + 2x + 3x = 6x, summed slot-by-slot
            np.testing.assert_array_equal(
                board.reduce(3), 6.0 * np.arange(1.0, 5.0))

    def test_reduce_matches_sequential_addition_bitwise(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal((4, 64)) * 1e3
        with GradientBoard(4, 64, np.float64) as board:
            for slot in range(4):
                board.slot(slot)[:] = values[slot]
            reduced = board.reduce(4)
        expected = np.zeros(64)
        for row in values:  # same fixed order the board promises
            expected += row
        np.testing.assert_array_equal(reduced, expected)

    def test_reduce_count_validated(self):
        with GradientBoard(2, 3, np.float64) as board:
            with pytest.raises(ValueError):
                board.reduce(0)
            with pytest.raises(ValueError):
                board.reduce(3)

    def test_out_buffer_reused(self):
        with GradientBoard(2, 3, np.float64) as board:
            board.slot(0)[:] = 1.0
            board.slot(1)[:] = 2.0
            out = np.full(3, 99.0)
            result = board.reduce(2, out=out)
            assert result is out
            np.testing.assert_array_equal(out, 3.0)
