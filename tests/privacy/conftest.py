"""Shared helpers for the privacy tests: distinct-word records (the
tokenizer drops single characters, so numeric suffixes would collapse
otherwise-distinct records into identical token sets)."""

from repro.data.records import EntityRecord, Table

WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
         "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
         "oscar", "papa", "quebec", "romeo", "sierra", "tango")

# disjoint list for the "high digit" of i, so token sets stay unique
# even past len(WORDS) records (base-20 pairs never collide across lists)
MAKERS = ("uniform", "victor", "whiskey", "xray", "yankee", "zulu",
          "anchor", "beacon", "copper", "dagger")


def make_record(i, kind="relational", extra=""):
    """A record whose token set is unique per ``i`` (distinct words)."""
    name = f"{WORDS[i % len(WORDS)]} {WORDS[(i * 7 + 3) % len(WORDS)]}"
    maker = f"{MAKERS[(i // len(WORDS)) % len(MAKERS)]} " \
            f"{WORDS[(i * 3 + 1) % len(WORDS)]}"
    values = {"title": (name + " " + extra).strip(), "maker": maker}
    return EntityRecord(record_id=f"r{i}", kind=kind, values=values)


def make_records(n, **kwargs):
    return [make_record(i, **kwargs) for i in range(n)]


def make_table(n, name="left", **kwargs):
    return Table(name, "relational", make_records(n, **kwargs))
