"""PrivateBlocker tests: BlockingResult contract, the recall_at_k == 1.0
kernel-exactness canary, min_score, and degenerate tables."""

import pytest

from repro.data.blocking import BlockingResult
from repro.privacy import ClkConfig, ClkEncoder, PrivateBlocker

from .conftest import make_record, make_table

SALT = "blocker-secret"


def blocker(**kwargs):
    return PrivateBlocker(
        ClkEncoder(SALT, ClkConfig(nbits=256, num_hashes=8)), **kwargs)


class TestContract:
    def test_blocking_result_shape(self):
        left, right = make_table(6), make_table(10, name="right")
        result = blocker(k=3).block(left, right)
        assert isinstance(result, BlockingResult)
        assert result.total_pairs == 60
        assert result.recall_at_k is None  # not measured unless asked
        assert 0 < len(result.candidates) <= 6 * 3
        for pair in result.candidates:
            left_record, right_record = pair
            assert left_record.record_id.startswith("r")
            assert right_record.record_id.startswith("r")

    def test_self_match_always_retained(self):
        # identical tables: each left record's own twin scores Dice 1.0
        left, right = make_table(8), make_table(8, name="right")
        result = blocker(k=2).block(left, right)
        kept = {(l.record_id, r.record_id) for l, r in result.candidates}
        for i in range(8):
            assert (f"r{i}", f"r{i}") in kept

    def test_k_validated(self):
        with pytest.raises(ValueError):
            blocker(k=0)


class TestRecallCanary:
    def test_kernel_matches_reference_exactly(self):
        # recall_at_k here compares the packed kernel's top-k to the
        # pure-Python bin().count() ranking: 1.0 or the kernel is wrong
        left, right = make_table(10), make_table(15, name="right")
        result = blocker(k=4).block(left, right, measure_recall=True)
        assert result.recall_at_k == 1.0

    def test_recall_with_min_score(self):
        # exactness is measured pre-threshold, so a tight floor cannot
        # masquerade as kernel loss
        left, right = make_table(6), make_table(9, name="right")
        result = blocker(k=3, min_score=0.99).block(
            left, right, measure_recall=True)
        assert result.recall_at_k == 1.0
        kept = {(l.record_id, r.record_id) for l, r in result.candidates}
        assert kept == {(f"r{i}", f"r{i}") for i in range(6)}


class TestEdges:
    def test_empty_left(self):
        result = blocker().block(make_table(0), make_table(5, name="right"),
                                 measure_recall=True)
        assert result.candidates == []
        assert result.total_pairs == 0
        assert result.recall_at_k == 1.0

    def test_empty_right(self):
        result = blocker().block(make_table(5), make_table(0, name="right"))
        assert result.candidates == []
        assert result.recall_at_k is None

    def test_k_larger_than_right(self):
        left, right = make_table(3), make_table(2, name="right")
        result = blocker(k=50).block(left, right, measure_recall=True)
        assert len(result.candidates) == 6  # every pair survives
        assert result.recall_at_k == 1.0

    def test_deterministic(self):
        left, right = make_table(7), make_table(7, name="right")
        a = blocker(k=2).block(left, right)
        b = blocker(k=2).block(left, right)
        pairs = lambda res: [(l.record_id, r.record_id)
                             for l, r in res.candidates]
        assert pairs(a) == pairs(b)
