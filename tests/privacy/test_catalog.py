"""ClkCatalog tests: bit-identical save/load round-trip, schema and
compatibility rejection, and the never-holds-plaintext contract."""

import json

import numpy as np
import pytest

from repro.privacy import (
    CLK_SCHEMA_VERSION, ClkCatalog, ClkCatalogError, ClkConfig, ClkEncoder,
)

from .conftest import make_records

SALT = "catalog-secret"


def build_catalog(n=6, **config_kwargs):
    encoder = ClkEncoder(SALT, ClkConfig(**config_kwargs))
    return ClkCatalog.from_records(encoder, make_records(n)), encoder


class TestRoundTrip:
    def test_bit_identical(self, tmp_path):
        catalog, _ = build_catalog()
        catalog.save(tmp_path / "clk")
        loaded = ClkCatalog.load(tmp_path / "clk")
        assert loaded.ids == catalog.ids
        np.testing.assert_array_equal(loaded.filters, catalog.filters)
        assert loaded.params == catalog.params

    def test_manifest_contents(self, tmp_path):
        catalog, encoder = build_catalog(nbits=256)
        catalog.save(tmp_path / "clk")
        manifest = json.loads((tmp_path / "clk" / "clk.json").read_text())
        assert manifest["schema_version"] == CLK_SCHEMA_VERSION
        assert manifest["kind"] == "clk-catalog"
        assert manifest["count"] == len(catalog)
        assert manifest["salt_digest"] == encoder.salt_digest

    def test_no_plaintext_on_disk(self, tmp_path):
        # the whole point: nothing in the artifact reveals record values
        records = make_records(4)
        encoder = ClkEncoder(SALT)
        catalog = ClkCatalog.from_records(encoder, records)
        catalog.save(tmp_path / "clk")
        on_disk = b"".join(p.read_bytes()
                           for p in (tmp_path / "clk").iterdir())
        for record in records:
            for value in record.values.values():
                assert value.encode() not in on_disk
        assert SALT.encode() not in on_disk

    def test_lookup(self):
        catalog, encoder = build_catalog(3)
        assert len(catalog) == 3 and "r1" in catalog
        np.testing.assert_array_equal(
            catalog.get("r1"), encoder.encode_record(make_records(2)[1]))
        assert catalog.get("nope") is None
        assert dict(catalog.entries()).keys() == {"r0", "r1", "r2"}


class TestValidation:
    def test_duplicate_ids_rejected(self):
        filters = np.zeros((2, 4), dtype=np.uint64)
        with pytest.raises(ClkCatalogError):
            ClkCatalog(["a", "a"], filters, {"words": 4})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ClkCatalogError):
            ClkCatalog(["a"], np.zeros((1, 4), dtype=np.uint64),
                       {"words": 8})
        with pytest.raises(ClkCatalogError):
            ClkCatalog(["a", "b"], np.zeros((1, 4), dtype=np.uint64),
                       {"words": 4})

    def test_wrong_schema_version(self, tmp_path):
        catalog, _ = build_catalog()
        catalog.save(tmp_path / "clk")
        manifest_path = tmp_path / "clk" / "clk.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = CLK_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ClkCatalogError) as err:
            ClkCatalog.load(tmp_path / "clk")
        # found-vs-supported phrasing: both versions appear in the error
        assert str(CLK_SCHEMA_VERSION + 1) in str(err.value)
        assert str(CLK_SCHEMA_VERSION) in str(err.value)

    def test_not_a_catalog_dir(self, tmp_path):
        with pytest.raises(ClkCatalogError):
            ClkCatalog.load(tmp_path)

    def test_count_mismatch(self, tmp_path):
        catalog, _ = build_catalog()
        catalog.save(tmp_path / "clk")
        manifest_path = tmp_path / "clk" / "clk.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["count"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ClkCatalogError):
            ClkCatalog.load(tmp_path / "clk")


class TestCompatibility:
    def test_same_encoder_compatible(self):
        catalog, encoder = build_catalog()
        catalog.compatible_with(encoder.params())  # no raise

    def test_shape_mismatch(self):
        catalog, _ = build_catalog(nbits=256)
        other = ClkEncoder(SALT, ClkConfig(nbits=512))
        with pytest.raises(ClkCatalogError) as err:
            catalog.compatible_with(other.params())
        assert "nbits" in str(err.value)

    def test_salt_mismatch(self):
        catalog, _ = build_catalog()
        other = ClkEncoder("a-different-secret")
        with pytest.raises(ClkCatalogError) as err:
            catalog.compatible_with(other.params())
        assert "salt" in str(err.value)

    def test_salt_mismatch_ignorable(self):
        catalog, _ = build_catalog()
        other = ClkEncoder("a-different-secret")
        catalog.compatible_with(other.params(), check_salt=False)

    def test_hardening_mismatch(self):
        catalog, _ = build_catalog(nbits=256)
        other = ClkEncoder(SALT, ClkConfig(nbits=256, hardening="balance"))
        with pytest.raises(ClkCatalogError):
            catalog.compatible_with(other.params())


class TestStats:
    def test_stats_shape(self):
        catalog, _ = build_catalog(5, nbits=256)
        stats = catalog.stats()
        assert stats["count"] == 5
        assert stats["encoded_nbits"] == 256
        assert 0.0 < stats["mean_fill"] < 1.0
        assert stats["params"]["hardening"] == "none"

    def test_empty_catalog(self):
        catalog = ClkCatalog([], np.zeros((0, 4), dtype=np.uint64),
                             {"words": 4})
        assert len(catalog) == 0
        assert catalog.stats()["mean_fill"] == 0.0
