"""Encoder tests: keyed determinism (in-process, across fork AND spawn),
salt independence, hardening invariants, config validation, and the wire
byte round-trip.

Cross-process bit-identity is the load-bearing property: a serving pool
forks replicas and a party may re-encode on another machine entirely, so
``same salt + same record -> same filter`` must hold with no process
state involved (the encoder uses only HMAC, never Python's seeded
``hash()``).
"""

import multiprocessing

import numpy as np
import pytest

from repro.privacy import (
    HARDENING_MODES, ClkConfig, ClkEncoder, clk_from_bytes, clk_to_bytes,
    popcount,
)

from .conftest import make_record, make_records

SALT = "tests-shared-secret"


def _encode_in_child(salt, config_kwargs, record_values, queue):
    """Top-level so the spawn start method can pickle it."""
    from repro.data.records import EntityRecord
    from repro.privacy import ClkConfig, ClkEncoder, clk_to_bytes

    encoder = ClkEncoder(salt, ClkConfig(**config_kwargs))
    record = EntityRecord(record_id="x", kind="relational",
                          values=record_values)
    queue.put(clk_to_bytes(encoder.encode_record(record)))


def encode_via(start_method, salt, config_kwargs, record_values):
    ctx = multiprocessing.get_context(start_method)
    queue = ctx.Queue()
    child = ctx.Process(target=_encode_in_child,
                        args=(salt, config_kwargs, record_values, queue))
    child.start()
    try:
        raw = queue.get(timeout=60)
    finally:
        child.join(timeout=60)
    return clk_from_bytes(raw)


class TestDeterminism:
    def test_same_salt_same_record_in_process(self):
        record = make_record(3)
        a = ClkEncoder(SALT).encode_record(record)
        b = ClkEncoder(SALT).encode_record(record)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_bit_identical_across_processes(self, start_method):
        record = make_record(5)
        config = {"nbits": 256, "num_hashes": 8}
        parent = ClkEncoder(SALT, ClkConfig(**config)).encode_record(record)
        child = encode_via(start_method, SALT, config, dict(record.values))
        np.testing.assert_array_equal(parent, child)

    @pytest.mark.parametrize("hardening", HARDENING_MODES)
    def test_hardening_deterministic(self, hardening):
        config = ClkConfig(nbits=256, hardening=hardening)
        record = make_record(7)
        a = ClkEncoder(SALT, config).encode_record(record)
        b = ClkEncoder(SALT, config).encode_record(record)
        np.testing.assert_array_equal(a, b)

    def test_batch_matches_single(self):
        records = make_records(6)
        encoder = ClkEncoder(SALT)
        batch = encoder.encode_records(records)
        for i, record in enumerate(records):
            np.testing.assert_array_equal(batch[i],
                                          encoder.encode_record(record))


class TestSaltIndependence:
    def test_different_salts_differ(self):
        record = make_record(1)
        a = ClkEncoder("salt-a").encode_record(record)
        b = ClkEncoder("salt-b").encode_record(record)
        assert not np.array_equal(a, b)

    def test_different_salts_statistically_independent(self):
        # under independent keys the expected bit overlap of two ~half-
        # full 1024-bit filters is ~fill_a*fill_b; Dice should sit near
        # that baseline, far from the same-salt value of 1.0
        records = make_records(20)
        enc_a = ClkEncoder("salt-a")
        enc_b = ClkEncoder("salt-b")
        dices = []
        for record in records:
            a, b = enc_a.encode_record(record), enc_b.encode_record(record)
            inter = int(popcount(a & b))
            denom = int(popcount(a)) + int(popcount(b))
            dices.append(2.0 * inter / denom)
            fill_a = int(popcount(a)) / 1024
            fill_b = int(popcount(b)) / 1024
            expected = 2 * fill_a * fill_b / (fill_a + fill_b)
            assert abs(dices[-1] - expected) < 0.25
        assert max(dices) < 0.75  # nowhere near the same-salt 1.0

    def test_salt_digest_identifies_key_not_config(self):
        assert ClkEncoder("k1").salt_digest == \
            ClkEncoder("k1", ClkConfig(nbits=256)).salt_digest
        assert ClkEncoder("k1").salt_digest != ClkEncoder("k2").salt_digest

    def test_repr_never_leaks_salt(self):
        encoder = ClkEncoder("super-secret-value")
        assert "super-secret-value" not in repr(encoder)
        assert encoder.salt_digest in repr(encoder)


class TestHardening:
    def test_balance_constant_hamming_weight(self):
        config = ClkConfig(nbits=512, hardening="balance")
        encoder = ClkEncoder(SALT, config)
        for record in make_records(8):
            clk = encoder.encode_record(record)
            assert clk.shape == (config.words,)
            assert int(popcount(clk)) == 512  # nbits of 2*nbits, always

    def test_fold_halves_length(self):
        config = ClkConfig(nbits=512, hardening="fold")
        clk = ClkEncoder(SALT, config).encode_record(make_record(2))
        assert clk.shape == (4,)  # 256 bits
        assert config.encoded_nbits == 256

    def test_fold_is_xor_of_halves(self):
        plain_cfg = ClkConfig(nbits=512)
        fold_cfg = ClkConfig(nbits=512, hardening="fold")
        record = make_record(4)
        plain = ClkEncoder(SALT, plain_cfg).encode_record(record)
        folded = ClkEncoder(SALT, fold_cfg).encode_record(record)
        np.testing.assert_array_equal(folded, plain[:4] ^ plain[4:])

    def test_balance_permutation_is_salt_derived(self):
        config = ClkConfig(nbits=256, hardening="balance")
        record = make_record(6)
        a = ClkEncoder("k1", config).encode_record(record)
        b = ClkEncoder("k2", config).encode_record(record)
        assert not np.array_equal(a, b)


class TestConfigValidation:
    def test_nbits_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            ClkConfig(nbits=100)
        with pytest.raises(ValueError):
            ClkConfig(nbits=0)

    def test_fold_needs_even_word_count(self):
        with pytest.raises(ValueError):
            ClkConfig(nbits=64, hardening="fold")

    def test_unknown_hardening(self):
        with pytest.raises(ValueError):
            ClkConfig(hardening="rehash")

    def test_positive_hashes_and_qgram(self):
        with pytest.raises(ValueError):
            ClkConfig(num_hashes=0)
        with pytest.raises(ValueError):
            ClkConfig(qgram=0)

    def test_salt_required(self):
        with pytest.raises(ValueError):
            ClkEncoder("")
        with pytest.raises(TypeError):
            ClkEncoder(1234)

    def test_str_and_bytes_salt_equivalent(self):
        record = make_record(9)
        np.testing.assert_array_equal(
            ClkEncoder("abc").encode_record(record),
            ClkEncoder(b"abc").encode_record(record))


class TestGramOracle:
    def test_encode_matches_gram_bits_oracle(self):
        # re-derive the filter from the public oracle methods
        encoder = ClkEncoder(SALT, ClkConfig(nbits=256, num_hashes=5))
        record = make_record(11)
        bits = np.zeros(256, dtype=bool)
        for gram in encoder.qgrams(record):
            bits[encoder.gram_bits(gram)] = True
        expected = encoder._pack(bits)
        np.testing.assert_array_equal(encoder.encode_record(record),
                                      expected)

    def test_qgrams_sorted_unique(self):
        grams = ClkEncoder(SALT).qgrams(make_record(0))
        assert grams == sorted(set(grams))
        assert all(len(g) == 2 for g in grams)

    def test_empty_record_encodes_empty_filter(self):
        from repro.data.records import EntityRecord

        empty = EntityRecord(record_id="e", kind="relational", values={})
        clk = ClkEncoder(SALT).encode_record(empty)
        assert int(popcount(clk)) == 0


class TestWireBytes:
    def test_roundtrip(self):
        clk = ClkEncoder(SALT).encode_record(make_record(13))
        again = clk_from_bytes(clk_to_bytes(clk))
        np.testing.assert_array_equal(clk, again)
        assert again.dtype == np.uint64

    def test_rejects_ragged_length(self):
        with pytest.raises(ValueError):
            clk_from_bytes(b"\x00" * 9)

    def test_byte_layout_is_little_endian(self):
        clk = np.array([1], dtype=np.uint64)
        assert clk_to_bytes(clk) == b"\x01" + b"\x00" * 7
