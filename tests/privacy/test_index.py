"""ClkCandidateIndex tests: replace-on-readd (mirroring
``tests/ann/test_index.py::test_replace_on_readd``), tombstone row reuse,
growth, tie ordering, and the cross-party/single-party split."""

import numpy as np
import pytest

from repro.privacy import ClkCandidateIndex, ClkConfig, ClkEncoder
from repro.privacy.index import _INITIAL_CAPACITY

from .conftest import make_record, make_records

SALT = "index-secret"


def small_encoder():
    return ClkEncoder(SALT, ClkConfig(nbits=256, num_hashes=8))


def single_party_index(n=0, **kwargs):
    index = ClkCandidateIndex(encoder=small_encoder(), **kwargs)
    if n:
        index.add_many(make_records(n))
    return index


class TestConstruction:
    def test_needs_shape_or_encoder(self):
        with pytest.raises(ValueError):
            ClkCandidateIndex()
        with pytest.raises(ValueError):
            ClkCandidateIndex(words=0)

    def test_encoder_fixes_words(self):
        index = ClkCandidateIndex(encoder=small_encoder())
        assert index.words == 4  # 256 bits

    def test_words_encoder_conflict(self):
        with pytest.raises(ValueError):
            ClkCandidateIndex(words=8, encoder=small_encoder())

    def test_default_k_validated(self):
        with pytest.raises(ValueError):
            ClkCandidateIndex(words=4, default_k=0)


class TestReplaceOnReadd:
    def test_readd_replaces(self):
        # mirrors tests/ann/test_index.py::test_replace_on_readd: an id
        # re-added after mutation must be searchable under its NEW filter
        index = single_party_index()
        encoder = index.encoder
        original = make_record(0)
        assert index.add(original) is True
        mutated = make_record(0, extra="revised edition")
        assert index.add(mutated) is False  # replaced, not fresh
        assert len(index) == 1
        np.testing.assert_array_equal(
            index.get_clk("r0"), encoder.encode_record(mutated))
        assert index.get("r0").values == mutated.values

    def test_filter_only_readd_pops_stale_record(self):
        index = single_party_index()
        record = make_record(1)
        index.add(record)
        assert index.get("r1") is not None
        fresh_clk = index.encoder.encode_record(
            make_record(1, extra="changed"))
        assert index.add_clk("r1", fresh_clk) is False
        # the stored plaintext no longer matches the filter -> dropped
        assert index.get("r1") is None
        np.testing.assert_array_equal(index.get_clk("r1"), fresh_clk)

    def test_replaced_filter_wins_search(self):
        index = single_party_index()
        index.add_many(make_records(8))
        mutated = make_record(2, extra="quebec victor whiskey")
        index.add(mutated)
        top_id, top_score = index.search(
            index.encoder.encode_record(mutated), k=1)[0]
        assert top_id == "r2" and top_score == 1.0


class TestRowRecycling:
    def test_remove_frees_row(self):
        index = single_party_index(5)
        free_before = index.stats()["free_rows"]
        assert index.remove("r3") is True
        assert index.stats()["free_rows"] == free_before + 1
        assert "r3" not in index
        assert index.remove("r3") is False

    def test_removed_never_returned(self):
        index = single_party_index(6)
        query = index.encoder.encode_record(make_record(4))
        assert "r4" in [rid for rid, _ in index.search(query, k=6)]
        index.remove("r4")
        assert "r4" not in [rid for rid, _ in index.search(query, k=6)]

    def test_tombstone_row_reused(self):
        index = single_party_index(4)
        index.remove("r1")
        capacity_before = index.stats()["capacity"]
        index.add(make_record(10))
        stats = index.stats()
        assert stats["capacity"] == capacity_before  # recycled, not grown
        assert stats["records"] == 4

    def test_growth_past_initial_capacity(self):
        index = single_party_index()
        n = _INITIAL_CAPACITY + 17
        assert index.add_many(make_records(n)) == n
        stats = index.stats()
        assert stats["records"] == n
        assert stats["capacity"] >= n
        # everything still searchable after reallocation
        query = index.encoder.encode_record(make_record(n - 1))
        assert index.search(query, k=1)[0][0] == f"r{n - 1}"


class TestSearch:
    def test_tie_ordering_by_id(self):
        # two ids with the SAME filter: the tie resolves by record id
        index = ClkCandidateIndex(words=2, default_k=5)
        clk = np.array([0xF0F0, 0x1], dtype=np.uint64)
        index.add_clk("zz", clk)
        index.add_clk("aa", clk)
        found = index.search(clk, k=2)
        assert [rid for rid, _ in found] == ["aa", "zz"]
        assert all(score == 1.0 for _, score in found)

    def test_min_score_filters(self):
        index = ClkCandidateIndex(words=1, min_score=0.9)
        index.add_clk("close", np.array([0xFF], dtype=np.uint64))
        index.add_clk("far", np.array([0x0F00], dtype=np.uint64))
        found = index.search(np.array([0xFF], dtype=np.uint64), k=5)
        assert [rid for rid, _ in found] == ["close"]

    def test_empty_index(self):
        index = ClkCandidateIndex(words=2)
        assert index.search(np.zeros(2, dtype=np.uint64), k=3) == []

    def test_shape_validated(self):
        index = ClkCandidateIndex(words=4)
        with pytest.raises(ValueError):
            index.search(np.zeros(3, dtype=np.uint64))
        with pytest.raises(ValueError):
            index.add_clk("x", np.zeros(5, dtype=np.uint64))

    def test_k_validated(self):
        index = ClkCandidateIndex(words=2)
        with pytest.raises(ValueError):
            index.search(np.zeros(2, dtype=np.uint64), k=0)


class TestPartyModes:
    def test_cross_party_refuses_plaintext(self):
        index = ClkCandidateIndex(words=4)
        with pytest.raises(ValueError) as err:
            index.add(make_record(0))
        assert "cross-party" in str(err.value)
        with pytest.raises(ValueError):
            index.candidates(make_record(0))

    def test_cross_party_resolves_no_records(self):
        # filters went in without plaintext: candidates_from_clk finds
        # nothing to hand to a scoring model, by construction
        encoder = small_encoder()
        index = ClkCandidateIndex(words=4)
        records = make_records(5)
        index.add_clk_many(
            (r.record_id, encoder.encode_record(r)) for r in records)
        query = encoder.encode_record(records[0])
        assert index.search(query, k=3)  # ids + scores do come back
        assert index.candidates_from_clk(query, k=3) == []
        assert index.stats()["plaintext_records"] == 0
        assert index.stats()["has_encoder"] is False

    def test_single_party_resolves_records(self):
        index = single_party_index(5)
        found = index.candidates(make_record(2), k=3)
        assert found and found[0][0].record_id == "r2"
        assert found[0][1] == 1.0
        assert index.stats()["plaintext_records"] == 5
        assert index.stats()["has_encoder"] is True

    def test_add_clk_many_counts_fresh(self):
        encoder = small_encoder()
        index = ClkCandidateIndex(words=4)
        entries = [(f"r{i}", encoder.encode_record(make_record(i)))
                   for i in range(4)]
        assert index.add_clk_many(entries) == 4
        assert index.add_clk_many(entries[:2]) == 0  # replacements
        assert len(index) == 4
