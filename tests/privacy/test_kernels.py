"""Kernel property tests: packed popcount/Dice must agree EXACTLY with
the pure-Python ``bin().count("1")`` reference -- not approximately.

The SWAR ladder, the byte-LUT cross-check, and the reference are three
independent implementations; equality across all three on arbitrary
bitsets (random, empty, all-ones, mismatched cardinalities) pins the bit
twiddling.  Dice agreement is asserted with ``==`` on float64: the
vectorized kernel and :func:`dice_reference` perform the same IEEE
operations in the same order, so any drift is a real kernel change.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    dice_reference, dice_scores, dice_topk, naive_dice_scores, popcount,
    popcount_bytes, popcount_reference, topk_candidates,
)
from repro.privacy.kernels import BLOCK_ROWS, popcount_words

uint64s = st.integers(min_value=0, max_value=2 ** 64 - 1)


def words_array(rows):
    return np.array(rows, dtype=np.uint64)


class TestPopcount:
    @given(st.lists(uint64s, min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, row):
        packed = words_array(row)
        expected = popcount_reference(row)
        assert int(popcount(packed)) == expected
        assert int(popcount_bytes(packed)) == expected
        assert int(popcount_words(packed).sum()) == expected

    @given(st.lists(st.lists(uint64s, min_size=4, max_size=4),
                    min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_rowwise_swar_vs_lut_vs_reference(self, rows):
        packed = words_array(rows)
        expected = np.array([popcount_reference(row) for row in rows])
        np.testing.assert_array_equal(popcount(packed), expected)
        np.testing.assert_array_equal(popcount_bytes(packed), expected)

    def test_edge_words(self):
        # empty, all-ones, single-bit patterns, alternating masks
        edge = words_array([0, 2 ** 64 - 1, 1, 2 ** 63,
                            0x5555555555555555, 0xAAAAAAAAAAAAAAAA,
                            0x0101010101010101, 0x8000000000000001])
        expected = [0, 64, 1, 1, 32, 32, 8, 2]
        np.testing.assert_array_equal(popcount_words(edge),
                                      np.array(expected, dtype=np.uint64))

    def test_empty_filter_rows(self):
        packed = np.zeros((3, 4), dtype=np.uint64)
        np.testing.assert_array_equal(popcount(packed), [0, 0, 0])

    def test_all_ones_rows(self):
        packed = np.full((2, 5), 2 ** 64 - 1, dtype=np.uint64)
        np.testing.assert_array_equal(popcount(packed), [320, 320])

    def test_shape_preserved(self):
        packed = np.zeros((2, 3, 4), dtype=np.uint64)
        assert popcount_words(packed).shape == (2, 3, 4)
        assert popcount(packed).shape == (2, 3)


class TestDice:
    @given(st.lists(uint64s, min_size=2, max_size=2),
           st.lists(st.lists(uint64s, min_size=2, max_size=2),
                    min_size=1, max_size=20))
    @settings(max_examples=150, deadline=None)
    def test_exact_agreement_with_reference(self, query, rows):
        filters = words_array(rows)
        q = words_array(query)
        kernel = dice_scores(q, filters)
        for i, row in enumerate(rows):
            assert kernel[i] == dice_reference(query, row)  # bit-exact

    def test_both_empty_is_zero(self):
        q = np.zeros(2, dtype=np.uint64)
        filters = np.zeros((3, 2), dtype=np.uint64)
        np.testing.assert_array_equal(dice_scores(q, filters), [0.0] * 3)
        assert dice_reference([0, 0], [0, 0]) == 0.0

    def test_identical_filters_score_one(self):
        rng = np.random.default_rng(0)
        f = rng.integers(1, 2 ** 64, size=(1, 4), dtype=np.uint64)
        assert dice_scores(f[0], f)[0] == 1.0

    def test_disjoint_filters_score_zero(self):
        a = words_array([0x00FF, 0])
        b = words_array([[0xFF00, 0]])
        assert dice_scores(a, b)[0] == 0.0

    def test_mismatched_cardinalities(self):
        # very unequal weights: 1 bit vs 64 bits sharing that 1 bit
        a = words_array([1, 0])
        b = words_array([[2 ** 64 - 1, 0]])
        expected = 2.0 * 1 / (1 + 64)
        assert dice_scores(a, b)[0] == expected
        assert dice_reference([1, 0], [2 ** 64 - 1, 0]) == expected

    def test_reference_rejects_word_length_mismatch(self):
        with pytest.raises(ValueError):
            dice_reference([1, 2], [1])

    def test_naive_scores_match_kernel(self):
        rng = np.random.default_rng(1)
        filters = rng.integers(0, 2 ** 64, size=(50, 3), dtype=np.uint64)
        q = rng.integers(0, 2 ** 64, size=3, dtype=np.uint64)
        naive = naive_dice_scores(q, filters)
        np.testing.assert_array_equal(dice_scores(q, filters), naive)


class TestTopK:
    def test_includes_all_ties(self):
        scores = np.array([0.9, 0.5, 0.5, 0.5, 0.1])
        keep = set(topk_candidates(scores, 2).tolist())
        assert keep == {0, 1, 2, 3}  # every tie at the k-th score

    def test_k_at_least_n_returns_all(self):
        assert len(topk_candidates(np.array([0.3, 0.2]), 5)) == 2

    def test_dice_topk_matches_full_ranking(self):
        rng = np.random.default_rng(2)
        filters = rng.integers(0, 2 ** 64, size=(500, 4), dtype=np.uint64)
        q = rng.integers(0, 2 ** 64, size=4, dtype=np.uint64)
        pool_rows, pool_scores = dice_topk(q, filters, 7)
        got = sorted(zip(-pool_scores, pool_rows.tolist()))[:7]
        full = dice_scores(q, filters)
        expected = sorted(zip(-full, range(len(full))))[:7]
        assert got == expected

    def test_blocked_equals_unblocked(self):
        # more rows than one kernel block: the streaming pool's merge
        # must be invisible in the result
        rng = np.random.default_rng(3)
        n = BLOCK_ROWS + 513
        filters = rng.integers(0, 2 ** 64, size=(n, 2), dtype=np.uint64)
        q = rng.integers(0, 2 ** 64, size=2, dtype=np.uint64)
        pool_rows, pool_scores = dice_topk(q, filters, 9)
        got = sorted(zip(-pool_scores, pool_rows.tolist()))[:9]
        full = dice_scores(q, filters)
        expected = sorted(zip(-full, range(n)))[:9]
        assert got == expected

    def test_rows_subset_restricts_scan(self):
        rng = np.random.default_rng(4)
        filters = rng.integers(0, 2 ** 64, size=(40, 2), dtype=np.uint64)
        sub = np.array([1, 5, 7, 30])
        pool_rows, _ = dice_topk(filters[5], filters, 40, rows=sub)
        assert set(pool_rows.tolist()) <= set(sub.tolist())
        assert 5 in pool_rows.tolist()
