"""Tier-1 smoke pass over the PPRL benchmark logic.

Runs the kernel arm of :mod:`benchmarks.bench_pprl` at toy scale and the
trade-off arm on the smallest dataset, checking structural outputs --
exact top-k agreement, plaintext-vs-CLK F1 ordering, kernel-exactness
recall -- WITHOUT asserting wall-clock speedups, so the test is stable
on loaded CI machines.  The real 10^5-filter timing comparison lives in
``benchmarks/bench_pprl.py`` (CI runs it at smoke scale in the bench job,
which also enforces the >= 10x bar).
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_pprl import (  # noqa: E402
    CLK_CONFIGS, best_f1, run_kernel_arm, run_tradeoff_arm,
    synthetic_filters,
)


@pytest.mark.smoke
def test_kernel_arm_smoke():
    result = run_kernel_arm(n=2000, n_queries=3, words=4, k=5,
                            naive_rows=300, seed=1)
    assert result["n"] == 2000 and result["queries"] == 3
    # exactness is scale-independent: the kernel is a full scan, so the
    # top-k must match the pure-Python ranking even on a toy catalog
    assert result["topk_agreement"] == 1.0
    assert result["kernel_query_ms"] > 0
    assert result["naive_query_ms_extrapolated"] > 0
    assert result["speedup"] > 0  # no 10x bar here: timing-free tier 1


@pytest.mark.smoke
def test_synthetic_filters_near_half_fill():
    rng = np.random.default_rng(7)
    filters = synthetic_filters(500, 4, rng)
    assert filters.shape == (500, 4) and filters.dtype == np.uint64
    fill = np.unpackbits(filters.view(np.uint8)).mean()
    assert 0.45 < fill < 0.55


@pytest.mark.smoke
def test_best_f1_sweep():
    # perfect separation -> F1 1.0 at a threshold between the classes
    f1, threshold = best_f1([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0])
    assert f1 == 1.0 and threshold >= 0.8
    # all-negative labels degenerate to zero, not a crash
    assert best_f1([0.5, 0.4], [0, 0]) == (0.0, 0.0)


@pytest.mark.smoke
def test_tradeoff_arm_smoke():
    tradeoff = run_tradeoff_arm("REL-HETER", k=10)
    assert tradeoff["pairs"] > 0 and tradeoff["true_matches"] > 0
    rows = tradeoff["rows"]
    assert len(rows) == 1 + len(CLK_CONFIGS)
    plain = rows[0]
    assert plain["config"].startswith("plaintext")
    assert plain["f1_cost"] == 0.0 and plain["kernel_recall"] is None
    for row in rows[1:]:
        # CLK never beats the plaintext grams it approximates
        assert row["f1"] <= plain["f1"] + 1e-9
        assert 0.0 <= row["blocker_recall"] <= 1.0
        # kernel-exactness canary: packed top-k == reference ranking
        assert row["kernel_recall"] == 1.0
