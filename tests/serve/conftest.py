"""Shared fixtures for the serving tests: one tiny backbone, one fitted
prompt model wrapped as a bundle, and a handful of benchmark pairs."""

import pytest

from repro.core import PromptModel, Verbalizer, make_template
from repro.data import load_dataset
from repro.lm import load_pretrained
from repro.serve import ModelBundle


@pytest.fixture(scope="package")
def backbone():
    return load_pretrained("minilm-tiny")


@pytest.fixture(scope="package")
def dataset():
    return load_dataset("REL-HETER")


@pytest.fixture(scope="package")
def pairs(dataset):
    return dataset.test[:12]


def make_model(backbone, max_len=96):
    lm, tok = backbone
    template = make_template("t1", tok, max_len=max_len)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    return model


@pytest.fixture(scope="package")
def bundle(backbone):
    return ModelBundle.from_model(make_model(backbone), threshold=0.5,
                                  name="tiny")
