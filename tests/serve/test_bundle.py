"""ModelBundle round-trip: predictions, threshold, and import isolation."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.infer import EngineConfig, InferenceEngine
from repro.serve import BUNDLE_SCHEMA_VERSION, BundleError, ModelBundle

from .conftest import make_model


class TestRoundTrip:
    def test_save_load_reproduces_predictions(self, backbone, pairs, tmp_path):
        model = make_model(backbone)
        bundle = ModelBundle.from_model(model, threshold=0.41, name="rt")
        bundle.save(tmp_path / "b")

        loaded = ModelBundle.load(tmp_path / "b")
        assert loaded.name == "rt"
        assert loaded.threshold == 0.41
        assert loaded.model.decision_threshold == 0.41

        engine = InferenceEngine(EngineConfig())
        original = engine.predict_proba(model, pairs)
        engine2 = InferenceEngine(EngineConfig())
        reloaded = engine2.predict_proba(loaded.model, pairs)
        assert np.array_equal(original, reloaded)

    def test_threshold_defaults_from_calibrated_model(self, backbone):
        model = make_model(backbone)
        model.decision_threshold = 0.37
        bundle = ModelBundle.from_model(model)
        assert bundle.threshold == 0.37

    def test_vocab_and_template_survive(self, backbone, tmp_path):
        model = make_model(backbone, max_len=64)
        ModelBundle.from_model(model, name="v").save(tmp_path / "b")
        loaded = ModelBundle.load(tmp_path / "b")
        assert len(loaded.model.tokenizer.vocab) == len(model.tokenizer.vocab)
        assert loaded.model.template.max_len == 64
        # identical token <-> id mapping, not just identical size
        vocab = model.tokenizer.vocab
        loaded_vocab = loaded.model.tokenizer.vocab
        assert vocab.tokens() == loaded_vocab.tokens()


class TestErrors:
    def test_non_prompt_model_rejected(self):
        with pytest.raises(BundleError):
            ModelBundle.from_model(object())

    def test_missing_directory(self, tmp_path):
        with pytest.raises(BundleError):
            ModelBundle.load(tmp_path / "nope")

    def test_unsupported_schema(self, backbone, tmp_path):
        ModelBundle.from_model(make_model(backbone)).save(tmp_path / "b")
        manifest_path = tmp_path / "b" / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError):
            ModelBundle.load(tmp_path / "b")


class TestImportIsolation:
    def test_fresh_process_loads_without_training_modules(
            self, backbone, pairs, tmp_path):
        """A serving process that only loads a bundle and scores must never
        import the trainer / self-training / pre-training stack."""
        model = make_model(backbone)
        ModelBundle.from_model(model, threshold=0.5).save(tmp_path / "b")
        engine = InferenceEngine(EngineConfig())
        expected = engine.predict_proba(model, list(pairs[:4]))

        pair_dicts = []
        for pair in pairs[:4]:
            from repro.data.io import _record_to_dict
            pair_dicts.append({"left": _record_to_dict(pair.left),
                               "right": _record_to_dict(pair.right)})
        src = str(Path(__file__).resolve().parents[2] / "src")
        code = f"""
import json, sys
sys.path.insert(0, {src!r})
from repro.serve import ModelBundle
from repro.data.dataset import CandidatePair
from repro.data.io import _record_from_dict
from repro.infer import EngineConfig, InferenceEngine

bundle = ModelBundle.load({str(tmp_path / "b")!r})
pairs = [CandidatePair(_record_from_dict(d["left"]),
                       _record_from_dict(d["right"]))
         for d in json.loads(sys.argv[1])]
probs = InferenceEngine(EngineConfig()).predict_proba(bundle.model, pairs)
banned = [m for m in sys.modules if m.endswith((
    "core.trainer", "core.self_training", "core.matcher", "core.active",
    "core.el2n", "core.uncertainty", "core.finetune",
    "lm.pretrain", "lm.zoo"))]
print(json.dumps({{"banned": banned, "threshold": bundle.threshold,
                   "probs": probs.tolist()}}))
"""
        result = subprocess.run(
            [sys.executable, "-c", code, json.dumps(pair_dicts)],
            capture_output=True, text=True, check=True)
        payload = json.loads(result.stdout)
        assert payload["banned"] == []
        assert payload["threshold"] == 0.5
        assert np.array_equal(np.array(payload["probs"]), expected)
