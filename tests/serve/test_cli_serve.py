"""CLI: the ``serve`` subcommand and ``run --save-bundle`` flag."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data.io import _record_to_dict


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--bundle", "b"])
        assert args.bundle == "b"
        assert args.port == 8080
        assert args.max_queue == 256
        assert args.max_batch_pairs == 32
        assert args.token_budget == 2048
        assert args.max_wait_ms == 2.0
        assert args.requests is None and args.catalog is None

    def test_serve_requires_bundle(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_run_accepts_save_bundle(self):
        args = build_parser().parse_args(["run", "--save-bundle", "out"])
        assert args.save_bundle == "out"

    def test_console_script_entry_point_declared(self):
        import re
        from pathlib import Path

        pyproject = (Path(__file__).resolve().parents[2] /
                     "pyproject.toml").read_text()
        assert re.search(r'^\s*repro\s*=\s*"repro\.cli:main"\s*$',
                         pyproject, re.M)


class TestServeJSONLMode:
    def test_batch_requests_roundtrip(self, bundle, dataset, pairs,
                                      tmp_path, capsys):
        bundle.save(tmp_path / "b")
        requests = tmp_path / "req.jsonl"
        with open(requests, "w") as f:
            for pair in pairs[:4]:
                f.write(json.dumps({
                    "op": "score",
                    "left": _record_to_dict(pair.left),
                    "right": _record_to_dict(pair.right)}) + "\n")
            f.write(json.dumps({
                "op": "match", "k": 2,
                "record": _record_to_dict(
                    dataset.left_table.records[0])}) + "\n")

        catalog = tmp_path / "catalog.jsonl"
        with open(catalog, "w") as f:
            for record in dataset.right_table:
                f.write(json.dumps(_record_to_dict(record)) + "\n")

        output = tmp_path / "out.jsonl"
        code = main(["serve", "--bundle", str(tmp_path / "b"),
                     "--requests", str(requests),
                     "--output", str(output),
                     "--catalog", str(catalog),
                     "--max-batch-pairs", "4"])
        assert code == 0
        responses = [json.loads(line)
                     for line in output.read_text().splitlines()]
        assert len(responses) == 5
        for response in responses[:4]:
            assert response["status"] == "ok"
            assert response["op"] == "score"
            assert response["model_version"] == 1
        assert responses[4]["op"] == "match"
        assert responses[4]["candidates"]
        err = capsys.readouterr().err
        assert "indexed" in err and "served" in err


class TestTenantCLI:
    def test_tune_parser_defaults(self):
        args = build_parser().parse_args(["tune", "--bundle", "b",
                                          "--out", "o"])
        assert args.peft == "soft_prompt"
        assert args.bottleneck == 8
        assert args.dataset == "REL-HETER"
        assert args.lr == 1e-2  # PEFT default, larger than full tuning

    def test_serve_accepts_tenants_dir(self):
        args = build_parser().parse_args(["serve", "--bundle", "b",
                                          "--tenants", "deltas"])
        assert args.tenants == "deltas"
        assert args.tenant_capacity == 64
        assert not args.no_fuse_tenants

    def test_bundle_info_full(self, bundle, tmp_path, capsys):
        bundle.save(tmp_path / "b")
        assert main(["bundle-info", str(tmp_path / "b")]) == 0
        out = capsys.readouterr().out
        assert "kind:           full" in out
        assert "schema version: 1" in out
        assert "name:           tiny" in out
        assert "trainable" in out and "fingerprint:" in out

    def test_bundle_info_delta(self, backbone, tmp_path, capsys):
        from repro.core import apply_peft
        from repro.lm import load_pretrained
        from repro.serve import DeltaBundle

        from .conftest import make_model

        model = make_model(load_pretrained("minilm-tiny"))
        apply_peft(model, "soft_prompt")
        DeltaBundle.from_model(model, name="acme",
                               threshold=0.7).save(tmp_path / "d")
        assert main(["bundle-info", str(tmp_path / "d")]) == 0
        out = capsys.readouterr().out
        assert "kind:           delta" in out
        assert "peft:           soft_prompt" in out
        assert "name:           acme" in out
        assert "threshold:      0.7" in out
        assert "backbone pin:   " in out

    def test_bundle_info_missing_manifest(self, tmp_path):
        with pytest.raises(SystemExit, match="bundle.json"):
            main(["bundle-info", str(tmp_path)])
