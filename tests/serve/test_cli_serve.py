"""CLI: the ``serve`` subcommand and ``run --save-bundle`` flag."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data.io import _record_to_dict


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--bundle", "b"])
        assert args.bundle == "b"
        assert args.port == 8080
        assert args.max_queue == 256
        assert args.max_batch_pairs == 32
        assert args.token_budget == 2048
        assert args.max_wait_ms == 2.0
        assert args.requests is None and args.catalog is None

    def test_serve_requires_bundle(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_run_accepts_save_bundle(self):
        args = build_parser().parse_args(["run", "--save-bundle", "out"])
        assert args.save_bundle == "out"

    def test_console_script_entry_point_declared(self):
        import re
        from pathlib import Path

        pyproject = (Path(__file__).resolve().parents[2] /
                     "pyproject.toml").read_text()
        assert re.search(r'^\s*repro\s*=\s*"repro\.cli:main"\s*$',
                         pyproject, re.M)


class TestServeJSONLMode:
    def test_batch_requests_roundtrip(self, bundle, dataset, pairs,
                                      tmp_path, capsys):
        bundle.save(tmp_path / "b")
        requests = tmp_path / "req.jsonl"
        with open(requests, "w") as f:
            for pair in pairs[:4]:
                f.write(json.dumps({
                    "op": "score",
                    "left": _record_to_dict(pair.left),
                    "right": _record_to_dict(pair.right)}) + "\n")
            f.write(json.dumps({
                "op": "match", "k": 2,
                "record": _record_to_dict(
                    dataset.left_table.records[0])}) + "\n")

        catalog = tmp_path / "catalog.jsonl"
        with open(catalog, "w") as f:
            for record in dataset.right_table:
                f.write(json.dumps(_record_to_dict(record)) + "\n")

        output = tmp_path / "out.jsonl"
        code = main(["serve", "--bundle", str(tmp_path / "b"),
                     "--requests", str(requests),
                     "--output", str(output),
                     "--catalog", str(catalog),
                     "--max-batch-pairs", "4"])
        assert code == 0
        responses = [json.loads(line)
                     for line in output.read_text().splitlines()]
        assert len(responses) == 5
        for response in responses[:4]:
            assert response["status"] == "ok"
            assert response["op"] == "score"
            assert response["model_version"] == 1
        assert responses[4]["op"] == "match"
        assert responses[4]["candidates"]
        err = capsys.readouterr().err
        assert "indexed" in err and "served" in err
