"""DeltaBundle: round-trip, fingerprint pin, and the schema/kind
handshake with the full-bundle loader."""

import json

import numpy as np
import pytest

from repro.core import apply_peft
from repro.lm import load_pretrained
from repro.serve import (
    BUNDLE_SCHEMA_VERSION, BundleError, DELTA_SCHEMA_VERSION, DeltaBundle,
    ModelBundle, backbone_fingerprint,
)

from .conftest import make_model


def fresh_peft_model(kind="soft_prompt", bottleneck=4, seed=0):
    model = make_model(load_pretrained("minilm-tiny"))
    apply_peft(model, kind, bottleneck=bottleneck, seed=seed)
    return model


def perturb(model, scale=0.05, seed=0):
    rng = np.random.default_rng(seed)
    for _, param in model.named_trainable_parameters():
        param.data[...] += (scale * rng.standard_normal(param.data.shape)
                            ).astype(param.data.dtype)


class TestDeltaRoundTrip:
    @pytest.mark.parametrize("kind", ["soft_prompt", "adapter"])
    def test_save_load_preserves_state(self, tmp_path, kind):
        model = fresh_peft_model(kind)
        perturb(model)
        delta = DeltaBundle.from_model(model, name="acme", threshold=0.61)
        delta.save(tmp_path / "acme")

        loaded = DeltaBundle.load(tmp_path / "acme")
        assert loaded.name == "acme"
        assert loaded.peft == kind
        assert loaded.threshold == 0.61
        assert loaded.fingerprint == backbone_fingerprint(model.lm)
        assert set(loaded.state) == set(delta.state)
        for key, value in delta.state.items():
            assert np.array_equal(loaded.state[key], value)

    def test_delta_is_kb_scale(self, tmp_path):
        model = fresh_peft_model("adapter")
        delta = DeltaBundle.from_model(model, name="small")
        assert delta.param_count <= 0.02 * model.num_parameters()
        path = delta.save(tmp_path / "small")
        on_disk = sum(f.stat().st_size for f in path.rglob("*")
                      if f.is_file())
        assert on_disk < 64 * 1024

    def test_from_model_requires_peft(self):
        model = make_model(load_pretrained("minilm-tiny"))
        with pytest.raises(BundleError, match="apply_peft"):
            DeltaBundle.from_model(model)


class TestSchemaHandshake:
    def test_full_loader_rejects_delta_with_versions(self, tmp_path):
        delta = DeltaBundle.from_model(fresh_peft_model(), name="t")
        delta.save(tmp_path / "t")
        with pytest.raises(BundleError) as excinfo:
            ModelBundle.load(tmp_path / "t")
        message = str(excinfo.value)
        assert str(DELTA_SCHEMA_VERSION) in message      # found
        assert str(BUNDLE_SCHEMA_VERSION) in message     # supported
        assert "delta" in message and "DeltaBundle" in message

    def test_full_loader_rejects_newer_schema(self, tmp_path, bundle):
        bundle.save(tmp_path / "b")
        manifest_path = tmp_path / "b" / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = BUNDLE_SCHEMA_VERSION + 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError) as excinfo:
            ModelBundle.load(tmp_path / "b")
        message = str(excinfo.value)
        assert str(BUNDLE_SCHEMA_VERSION + 99) in message
        assert str(BUNDLE_SCHEMA_VERSION) in message

    def test_delta_loader_rejects_full_bundle(self, tmp_path, bundle):
        bundle.save(tmp_path / "full")
        with pytest.raises(BundleError, match="ModelBundle"):
            DeltaBundle.load(tmp_path / "full")

    def test_missing_manifest_is_actionable(self, tmp_path):
        with pytest.raises(BundleError, match="bundle.json"):
            DeltaBundle.load(tmp_path)

    def test_full_manifest_records_kind(self, tmp_path, bundle):
        bundle.save(tmp_path / "b")
        manifest = json.loads((tmp_path / "b" / "bundle.json").read_text())
        assert manifest["kind"] == "full"
        assert manifest["schema_version"] == BUNDLE_SCHEMA_VERSION


class TestFingerprint:
    def test_stable_across_adapter_binding(self):
        model = fresh_peft_model("soft_prompt")
        before = backbone_fingerprint(model.lm)
        from repro.core import install_adapters, remove_adapters

        install_adapters(model.lm, bottleneck=4)
        assert backbone_fingerprint(model.lm) == before
        remove_adapters(model.lm)
        assert backbone_fingerprint(model.lm) == before

    def test_sensitive_to_weight_changes(self):
        model = fresh_peft_model("soft_prompt")
        before = backbone_fingerprint(model.lm)
        param = next(iter(model.lm.parameters()))
        param.data.flat[0] += 1.0
        assert backbone_fingerprint(model.lm) != before
