"""Dense candidate path in the serving layer: DenseCandidateIndex catalog
semantics, MatchServer mode routing and hot-add consistency, and the
/admin/candidates HTTP route."""

import json
import urllib.request

import numpy as np
import pytest

from repro.ann import RecordEncoder
from repro.data.io import _record_to_dict
from repro.data.records import EntityRecord
from repro.serve import (
    DenseCandidateIndex, MatchHTTPServer, MatchServer, ServerConfig,
    ServingIndex,
)


def rec(rid, text):
    return EntityRecord.text_record(rid, text)


@pytest.fixture(scope="module")
def encoder(backbone):
    lm, tok = backbone
    return RecordEncoder(lm=lm, tokenizer=tok, max_len=32)


@pytest.fixture()
def dense_index(encoder):
    index = DenseCandidateIndex(encoder, kind="ivf", nlist=2, nprobe=2,
                                default_k=3)
    index.add_many([
        rec("bike", "red mountain bicycle"),
        rec("coffee", "espresso coffee machine"),
        rec("phones", "wireless headphones"),
        rec("laptop", "gaming laptop computer"),
    ])
    return index.train()


class TestDenseCandidateIndex:
    def test_catalog_protocol(self, dense_index):
        assert len(dense_index) == 4
        assert "bike" in dense_index and "ghost" not in dense_index
        assert dense_index.get("bike").record_id == "bike"
        assert dense_index.remove("bike") and not dense_index.remove("bike")
        assert len(dense_index) == 3

    def test_candidates_scored_and_ordered(self, dense_index):
        hits = dense_index.candidates(rec("q", "red mountain bike"), 3)
        assert hits and all(isinstance(s, float) for _, s in hits)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)
        assert hits == dense_index.candidates(rec("q", "red mountain bike"),
                                              3)

    def test_replace_on_readd(self, dense_index):
        assert dense_index.add(rec("bike", "fresh espresso beans")) is False
        assert len(dense_index) == 4
        # the replaced record object is served, not the stale one
        assert dense_index.get("bike").values["text"] == \
            "fresh espresso beans"

    def test_add_many_counts_new(self, dense_index):
        assert dense_index.add_many(
            [rec("bike", "again"), rec("new1", "brand new record")]) == 1

    def test_invalid_k(self, dense_index):
        with pytest.raises(ValueError):
            dense_index.candidates(rec("q", "query"), 0)
        with pytest.raises(ValueError):
            DenseCandidateIndex(dense_index.encoder, default_k=0)

    def test_min_score_floor(self, encoder):
        strict = DenseCandidateIndex(encoder, kind="ivf", nlist=2,
                                     nprobe=2, min_score=1.1)
        strict.add(rec("a", "some catalog record"))
        assert strict.candidates(rec("q", "some catalog record"), 3) == []

    def test_stats_shape(self, dense_index):
        stats = dense_index.stats()
        assert stats["records"] == len(dense_index)
        assert stats["ann"]["kind"] == "ivf"


class TestServerModeRouting:
    def _server(self, bundle, encoder, mode="sparse"):
        catalog = [rec("bike", "red mountain bicycle"),
                   rec("coffee", "espresso coffee machine"),
                   rec("phones", "wireless headphones")]
        sparse = ServingIndex(default_k=3)
        dense = DenseCandidateIndex(encoder, kind="ivf", nlist=2, nprobe=2,
                                    default_k=3)
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4),
                             index=sparse, dense_index=dense,
                             candidate_mode=mode)
        server.catalog_add(catalog)
        return server

    def test_mode_validation(self, bundle, encoder):
        server = self._server(bundle, encoder)
        with pytest.raises(ValueError):
            server.set_candidate_mode("hybrid")
        no_dense = MatchServer(bundle)
        with pytest.raises(ValueError):
            no_dense.set_candidate_mode("dense")
        with pytest.raises(ValueError):
            MatchServer(bundle, candidate_mode="dense")

    def test_catalog_add_keeps_indexes_consistent(self, bundle, encoder):
        server = self._server(bundle, encoder)
        assert len(server.index) == len(server.dense_index) == 3
        server.catalog_add([rec("new", "brand new product")])
        assert "new" in server.index and "new" in server.dense_index
        assert server.catalog_remove(["new", "ghost"]) == 1
        assert "new" not in server.index
        assert "new" not in server.dense_index

    def test_match_routes_by_mode(self, bundle, encoder):
        server = self._server(bundle, encoder)
        query = rec("q", "red mountain bike")
        sparse_hits = server.match(query, k=3)
        assert server.stats()["candidate_mode"] == "sparse"
        # sparse retrieval keys on token overlap: only "bike" shares any
        assert [c.record.record_id for c in sparse_hits.candidates] == \
            ["bike"]
        server.set_candidate_mode("dense")
        dense_hits = server.match(query, k=3)
        assert server.stats()["candidate_mode"] == "dense"
        # dense retrieval returns top-k by cosine: all 3 catalog records
        assert len(dense_hits.candidates) == 3
        assert {c.record.record_id for c in dense_hits.candidates} == \
            {"bike", "coffee", "phones"}
        # block_score carries the cosine in dense mode
        assert all(np.isfinite(c.block_score)
                   for c in dense_hits.candidates)

    def test_dense_mode_hot_add_visible(self, bundle, encoder):
        server = self._server(bundle, encoder, mode="dense")
        server.catalog_add([rec("fresh", "red mountain bike replica")])
        hits = server.match(rec("q", "red mountain bike replica"), k=4)
        assert "fresh" in {c.record.record_id for c in hits.candidates}


class TestAdminCandidatesRoute:
    def test_flip_mode_over_http(self, bundle, encoder):
        dense = DenseCandidateIndex(encoder, kind="ivf", nlist=2, nprobe=2)
        server = MatchServer(bundle, dense_index=dense)
        with MatchHTTPServer(server, port=0) as http:
            def post(path, payload):
                req = urllib.request.Request(
                    f"{http.address}{path}",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(req) as resp:
                    return json.loads(resp.read())

            added = post("/admin/catalog",
                         {"add": [_record_to_dict(
                             rec("bike", "red mountain bicycle"))]})
            assert added["added"] == 1
            flipped = post("/admin/candidates", {"mode": "dense"})
            assert flipped == {"status": "ok", "candidate_mode": "dense"}
            stats = json.loads(urllib.request.urlopen(
                f"{http.address}/stats").read())
            assert stats["candidate_mode"] == "dense"
            assert stats["dense_index"]["records"] == 1
            match = post("/match", {
                "record": _record_to_dict(rec("q", "red mountain bike")),
                "k": 2})
            assert match["status"] == "ok"
            assert [c["record"]["id"] for c in match["candidates"]] == \
                ["bike"]

    def test_bad_mode_is_400(self, bundle, encoder):
        import urllib.error

        dense = DenseCandidateIndex(encoder, kind="ivf", nlist=2, nprobe=2)
        server = MatchServer(bundle, dense_index=dense)
        with MatchHTTPServer(server, port=0) as http:
            req = urllib.request.Request(
                f"{http.address}/admin/candidates",
                data=json.dumps({"mode": "psychic"}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req)
            assert err.value.code == 400
