"""Graceful shutdown regression: ``repro serve`` under SIGTERM/SIGINT
finishes its queued work and exits 0 -- single-process and pool-wide."""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.data.io import _record_to_dict
from repro.parallel.pool import fork_available

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture(scope="module")
def bundle_dir(bundle, tmp_path_factory):
    path = tmp_path_factory.mktemp("graceful") / "bundle"
    bundle.save(path)
    return path


def spawn_serve(bundle_dir, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--bundle", str(bundle_dir), "--port", "0", *extra_args],
        env=env, cwd=REPO_ROOT, stderr=subprocess.PIPE,
        stdout=subprocess.PIPE, text=True)


def wait_for_address(proc, timeout=120.0):
    """Read stderr until the server announces its listen address."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        lines.append(line)
        found = re.search(r"on (http://[\d.:]+)", line)
        if found:
            return found.group(1), lines
    raise AssertionError(f"server never announced address; stderr={lines!r}")


def finish(proc, timeout=60.0):
    try:
        out, err = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, err = proc.communicate()
        raise AssertionError(f"server did not exit after signal; "
                             f"stderr tail={err[-2000:]!r}")
    return proc.returncode, out, err


def score_once(address, pair):
    body = json.dumps({"left": _record_to_dict(pair.left),
                       "right": _record_to_dict(pair.right)}).encode()
    request = urllib.request.Request(
        address + "/score", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as reply:
        return json.loads(reply.read())


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_http_mode_exits_zero_on_signal(bundle_dir, pairs, sig):
    proc = spawn_serve(bundle_dir)
    try:
        address, _ = wait_for_address(proc)
        response = score_once(address, pairs[0])
        assert response["status"] == "ok"
        proc.send_signal(sig)
        code, _, err = finish(proc)
        assert code == 0, f"expected clean exit, got {code}; stderr={err!r}"
        assert "gracefully" in err
    finally:
        if proc.poll() is None:
            proc.kill()


@pytest.mark.skipif(not fork_available(),
                    reason="fork start method unavailable")
def test_pool_mode_exits_zero_on_sigterm(bundle_dir, pairs):
    """stop(drain=True) must reach every replica: the pool variant of the
    same contract, including worker teardown (no orphan processes keeping
    the exit code hostage)."""
    proc = spawn_serve(bundle_dir, "--replicas", "2", "--shards", "2")
    try:
        address, _ = wait_for_address(proc)
        response = score_once(address, pairs[0])
        assert response["status"] == "ok"
        proc.send_signal(signal.SIGTERM)
        code, _, err = finish(proc, timeout=90.0)
        assert code == 0, f"expected clean exit, got {code}; stderr={err!r}"
        assert "gracefully" in err
    finally:
        if proc.poll() is None:
            proc.kill()


def test_jsonl_mode_drains_on_signal(bundle_dir, pairs, tmp_path):
    """SIGTERM mid-stream: intake closes, already-accepted requests are
    still answered, and the process exits 0."""
    requests = tmp_path / "req.jsonl"
    with open(requests, "w") as f:
        for pair in list(pairs) * 40:
            f.write(json.dumps({
                "op": "score",
                "left": _record_to_dict(pair.left),
                "right": _record_to_dict(pair.right)}) + "\n")
    output = tmp_path / "out.jsonl"
    proc = spawn_serve(bundle_dir, "--requests", str(requests),
                       "--output", str(output))
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if output.exists() and output.stat().st_size > 0:
                break
            if proc.poll() is not None:
                break  # tiny stream finished before the signal: still fine
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        code, _, err = finish(proc, timeout=90.0)
        assert code == 0, f"expected clean exit, got {code}; stderr={err!r}"
        responses = [json.loads(line)
                     for line in output.read_text().splitlines()]
        assert responses, "accepted requests must still be answered"
        assert all(r["status"] == "ok" for r in responses)
    finally:
        if proc.poll() is None:
            proc.kill()
