"""Hot-swap contract: every in-flight request is answered by exactly one
model version, nothing is dropped, nothing is double-answered."""

import numpy as np
import pytest

from repro.infer import EngineConfig, InferenceEngine
from repro.serve import MatchServer, ModelBundle, Overloaded, ServerConfig

from .conftest import make_model


@pytest.fixture(scope="module")
def two_bundles(backbone, tmp_path_factory):
    """Two bundles whose probabilities differ on every pair: the second is
    the first with its classification head perturbed via a save/load copy."""
    model_a = make_model(backbone)
    bundle_a = ModelBundle.from_model(model_a, threshold=0.5, name="a")

    path = tmp_path_factory.mktemp("bundles") / "b"
    bundle_a.save(path)
    bundle_b = ModelBundle.load(path)
    bundle_b.name = "b"
    for parameter in bundle_b.model.parameters():
        parameter.data += 0.05  # distinguishable, still finite probabilities
    return bundle_a, bundle_b


class TestSwap:
    def test_swap_bumps_version(self, two_bundles):
        bundle_a, bundle_b = two_bundles
        server = MatchServer(bundle_a)
        assert server.version == 1
        assert server.swap(bundle_b) == 2
        assert server.version == 2
        assert server.bundle.name == "b"

    def test_responses_switch_with_version(self, two_bundles, pairs):
        bundle_a, bundle_b = two_bundles
        server = MatchServer(bundle_a, ServerConfig(max_batch_pairs=4))
        before = server.score(pairs[0])
        server.swap(bundle_b)
        after = server.score(pairs[0])
        assert before.model_version == 1 and before.bundle_name == "a"
        assert after.model_version == 2 and after.bundle_name == "b"
        assert not np.array_equal(before.probs, after.probs)


class TestInFlightConsistency:
    def test_exactly_one_version_per_response(self, two_bundles, pairs):
        """Stream requests while swapping concurrently; each response must
        carry probabilities computed by exactly the model whose version it
        reports, every request answered exactly once."""
        bundle_a, bundle_b = two_bundles
        config = ServerConfig(max_batch_pairs=4, token_budget=512,
                              max_queue=4096, max_wait_s=0.001,
                              record_batches=True)
        server = MatchServer(bundle_a, config)
        pairs = list(pairs)

        pendings = []
        with server:
            # each round: submit a burst, swap while the scheduler drains
            # it, then wait for the round before the next one. Responses of
            # round r carry version r+1 or r+2 (depending on where the swap
            # landed relative to each batch), so distinct rounds are
            # guaranteed to observe distinct versions.
            for round_ in range(8):
                round_pendings = []
                for pair in pairs:
                    pending = server.submit(pair)
                    pendings.append((pair, pending))
                    round_pendings.append(pending)
                server.swap(two_bundles[round_ % 2])
                for pending in round_pendings:
                    pending.result(timeout=30.0)
        # server context exit drains: every pending must now be resolved
        responses = []
        for pair, pending in pendings:
            assert pending.done(), "request dropped during hot swap"
            responses.append((pair, pending.result(timeout=0.0)))
        assert len(responses) == 8 * len(pairs)
        assert server.response_count == len(responses)
        assert server.request_count == len(responses)

        versions = {response.model_version for _, response in responses}
        assert len(versions) > 1, "swaps should land mid-stream"

        # replay every logged batch offline with the bundle named in the
        # response: bit-identical probabilities prove single-version batches
        engine = InferenceEngine(EngineConfig(
            token_budget=config.token_budget,
            max_batch_pairs=config.max_batch_pairs,
            cache_capacity=config.cache_capacity))
        by_batch = {}
        for (pair, pending), (_, response) in zip(pendings, responses):
            by_batch.setdefault(response.batch_id, []).append(response)
        model_by_name = {"a": bundle_a.model, "b": bundle_b.model}
        for entry in server.batch_log:
            batch_responses = by_batch[entry["batch_id"]]
            names = {r.bundle_name for r in batch_responses}
            versions = {r.model_version for r in batch_responses}
            assert len(names) == 1 and len(versions) == 1
            assert versions == {entry["version"]}
            model = model_by_name[names.pop()]
            replayed = engine.predict_proba(model, entry["pairs"])
            got = np.stack(sorted((r.probs for r in batch_responses),
                                  key=lambda p: tuple(p)))
            expected = np.stack(sorted(replayed, key=lambda p: tuple(p)))
            assert np.array_equal(got, expected)

    def test_double_resolution_raises(self, two_bundles, pairs):
        from repro.serve import PendingResponse, ScoreResponse

        pending = PendingResponse()
        response = ScoreResponse(
            probs=np.array([0.3, 0.7]), prediction=1, model_version=1,
            bundle_name="a", batch_id=0, batch_size=1,
            queue_seconds=0.0, service_seconds=0.0)
        pending._resolve(response)
        with pytest.raises(RuntimeError):
            pending._resolve(response)
        with pytest.raises(RuntimeError):
            pending._fail(Overloaded("late"))
