"""Wire protocol: socket-free JSONL driver and the stdlib HTTP server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.data.io import _record_to_dict
from repro.serve import (
    MatchHTTPServer, MatchServer, ServerConfig, ServingIndex, handle_request,
    read_jsonl, serve_requests,
)


def score_request(pair):
    return {"op": "score", "left": _record_to_dict(pair.left),
            "right": _record_to_dict(pair.right)}


class TestJSONLDriver:
    def test_score_and_match_requests(self, bundle, dataset, pairs):
        index = ServingIndex()
        index.add_many(dataset.right_table)
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4),
                             index=index)
        requests = [score_request(p) for p in pairs[:3]]
        requests.append({"op": "match",
                         "record": _record_to_dict(
                             dataset.left_table.records[0]),
                         "k": 3})
        responses = list(serve_requests(server, requests))
        assert len(responses) == 4
        for response in responses[:3]:
            assert response["status"] == "ok" and response["op"] == "score"
            assert len(response["probs"]) == 2
            assert response["model_version"] == 1
        match = responses[3]
        assert match["status"] == "ok" and match["op"] == "match"
        assert match["candidates"]
        assert all("probability" in c for c in match["candidates"])

    def test_responses_are_json_serializable(self, bundle, pairs):
        server = MatchServer(bundle)
        for response in serve_requests(server,
                                       [score_request(pairs[0])]):
            json.dumps(response)  # must not raise

    def test_unknown_op_is_protocol_error(self, bundle):
        from repro.serve import ProtocolError

        server = MatchServer(bundle)
        with pytest.raises(ProtocolError):
            handle_request(server, {"op": "frobnicate"})

    def test_missing_record_is_protocol_error(self, bundle):
        from repro.serve import ProtocolError

        server = MatchServer(bundle)
        with pytest.raises(ProtocolError):
            handle_request(server, {"op": "score", "left": {"id": "x"}})

    def test_overloaded_becomes_response_dict(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_queue=1))
        server.submit(pairs[0])  # fill the queue, no driver running
        response = handle_request(server, score_request(pairs[1]))
        assert response["status"] == "overloaded"
        assert response["queue_depth"] == 1

    def test_pipelined_driver_forms_microbatches(self, bundle, pairs):
        """The JSONL driver submits a window ahead of collection, so the
        scheduler sees real micro-batches, not size-1 batches (REVIEW)."""
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4))
        responses = list(serve_requests(
            server, [score_request(p) for p in pairs[:8]]))
        assert len(responses) == 8
        assert max(r["batch_size"] for r in responses) > 1
        assert server.stats()["batches"] < 8
        # responses stay in request order; batch composition differs from
        # solo scoring, so compare numerically (bit-identity per identical
        # batch is pinned in test_server.py and the benchmark)
        solo = MatchServer(bundle)
        for response, pair in zip(responses, pairs[:8]):
            expected = solo.score(pair)
            assert response["probs"] == pytest.approx(
                [float(p) for p in expected.probs], abs=1e-5)

    def test_pipelined_driver_respects_queue_bound(self, bundle, pairs):
        """A window larger than the queue retries instead of shedding."""
        server = MatchServer(bundle, ServerConfig(max_queue=2,
                                                  max_batch_pairs=4))
        responses = list(serve_requests(
            server, [score_request(p) for p in pairs[:6]], window=8))
        assert len(responses) == 6
        assert all(r["status"] == "ok" for r in responses)

    def test_stopped_server_yields_overloaded(self, bundle, pairs):
        server = MatchServer(bundle)
        server.stop(drain=False)
        responses = list(serve_requests(server,
                                        [score_request(pairs[0])]))
        assert responses[0]["status"] == "overloaded"

    def test_read_jsonl(self, tmp_path, pairs):
        path = tmp_path / "req.jsonl"
        with open(path, "w") as f:
            for pair in pairs[:2]:
                f.write(json.dumps(score_request(pair)) + "\n")
            f.write("\n")  # blank lines ignored
        assert len(read_jsonl(path)) == 2


class TestHTTPServer:
    @pytest.fixture()
    def http(self, bundle, dataset):
        index = ServingIndex()
        index.add_many(dataset.right_table)
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4),
                             index=index)
        try:
            wrapper = MatchHTTPServer(server, port=0)
        except OSError as error:  # pragma: no cover - sandboxed CI
            pytest.skip(f"cannot bind a local socket: {error}")
        with wrapper:
            yield wrapper

    def post(self, http, path, payload):
        request = urllib.request.Request(
            http.address + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_healthz_and_stats(self, http):
        with urllib.request.urlopen(http.address + "/healthz",
                                    timeout=10) as reply:
            body = json.loads(reply.read())
        assert body["status"] == "ok"
        assert body["model_version"] == 1
        # enriched probe payload: cheap liveness facts for an LB
        assert body["mode"] == "single"
        assert body["catalog_size"] >= 0
        assert "queue_depth" in body
        assert "scheduler_running" in body
        with urllib.request.urlopen(http.address + "/stats",
                                    timeout=10) as reply:
            stats = json.loads(reply.read())
        assert stats["model_version"] == 1

    def test_score_endpoint(self, http, pairs):
        status, body = self.post(http, "/score", score_request(pairs[0]))
        assert status == 200
        assert body["status"] == "ok"
        assert len(body["probs"]) == 2

    def test_match_endpoint(self, http, dataset):
        record = _record_to_dict(dataset.left_table.records[0])
        status, body = self.post(http, "/match", {"record": record, "k": 2})
        assert status == 200
        assert body["candidates"]

    def test_catalog_admin(self, http):
        status, body = self.post(http, "/admin/catalog", {
            "add": [{"id": "new1", "kind": "text",
                     "values": {"text": "brand new catalog entry"}}]})
        assert status == 200 and body["added"] == 1
        status, body = self.post(http, "/admin/catalog",
                                 {"remove": ["new1"]})
        assert status == 200 and body["removed"] == 1

    def test_swap_admin(self, http, bundle, tmp_path):
        bundle.save(tmp_path / "b2")
        status, body = self.post(http, "/admin/swap",
                                 {"bundle": str(tmp_path / "b2")})
        assert status == 200
        assert body["model_version"] == 2

    def test_bad_request(self, http):
        status, body = self.post(http, "/score", {"left": {"id": "x"}})
        assert status == 400
        status, body = self.post(http, "/nope", {})
        assert status == 404


class TestAdminAuth:
    """/admin/* routes are gated: token when configured, loopback-only
    otherwise (REVIEW: they used to be open to any client)."""

    @pytest.fixture()
    def http(self, bundle):
        server = MatchServer(bundle)
        try:
            wrapper = MatchHTTPServer(server, port=0, admin_token="sekrit")
        except OSError as error:  # pragma: no cover - sandboxed CI
            pytest.skip(f"cannot bind a local socket: {error}")
        with wrapper:
            yield wrapper

    def post(self, http, path, payload, token=None):
        headers = {"Content-Type": "application/json"}
        if token is not None:
            headers["X-Admin-Token"] = token
        request = urllib.request.Request(
            http.address + path, data=json.dumps(payload).encode(),
            headers=headers, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_admin_requires_token_when_configured(self, http):
        payload = {"add": [{"id": "a1", "kind": "text",
                            "values": {"text": "gated entry"}}]}
        status, body = self.post(http, "/admin/catalog", payload)
        assert status == 403 and body["status"] == "error"
        status, _ = self.post(http, "/admin/catalog", payload, token="wrong")
        assert status == 403
        status, body = self.post(http, "/admin/catalog", payload,
                                 token="sekrit")
        assert status == 200 and body["added"] == 1

    def test_swap_requires_token(self, http, bundle, tmp_path):
        bundle.save(tmp_path / "gated")
        status, _ = self.post(http, "/admin/swap",
                              {"bundle": str(tmp_path / "gated")})
        assert status == 403
        status, body = self.post(http, "/admin/swap",
                                 {"bundle": str(tmp_path / "gated")},
                                 token="sekrit")
        assert status == 200 and body["model_version"] == 2

    def test_scoring_routes_stay_open(self, http, pairs):
        status, body = self.post(http, "/score", score_request(pairs[0]))
        assert status == 200 and body["status"] == "ok"
