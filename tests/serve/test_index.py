"""ServingIndex: incremental catalog maintenance and top-k retrieval."""

import threading

import pytest

from repro.data import load_dataset
from repro.data.records import EntityRecord
from repro.serve import ServingIndex


def rec(rid, text):
    return EntityRecord.text_record(rid, text)


class TestMutation:
    def test_add_remove_roundtrip(self):
        index = ServingIndex()
        assert index.add(rec("a", "vldb conference paper"))
        assert "a" in index and len(index) == 1
        assert index.get("a").record_id == "a"
        assert index.remove("a")
        assert "a" not in index and len(index) == 0
        assert index.stats() == {"records": 0, "tokens": 0, "postings": 0}

    def test_duplicate_add_replaces(self):
        index = ServingIndex()
        assert index.add(rec("a", "entity matching survey"))
        # same id again: reported as a replacement, old tokens unlinked
        assert not index.add(rec("a", "database systems tutorial"))
        assert len(index) == 1
        results = index.candidates(rec("q", "entity matching"))
        assert results == []  # old version's tokens must be gone
        results = index.candidates(rec("q", "database systems"))
        assert [r.record_id for r, _ in results] == ["a"]

    def test_remove_unknown_id(self):
        index = ServingIndex()
        assert not index.remove("ghost")

    def test_remove_then_query(self):
        index = ServingIndex()
        index.add(rec("a", "prompt tuning language models"))
        index.add(rec("b", "prompt engineering guide"))
        index.remove("a")
        results = index.candidates(rec("q", "prompt tuning"))
        assert [r.record_id for r, _ in results] == ["b"]

    def test_add_many_counts_new_only(self):
        index = ServingIndex()
        added = index.add_many([rec("a", "one two"), rec("b", "three four"),
                                rec("a", "five six")])
        assert added == 2 and len(index) == 2


class TestRetrieval:
    def test_top_k_order_deterministic(self):
        # equal-size records so the overlap coefficient (normalized by the
        # smaller token set) strictly tracks the shared-token count
        index = ServingIndex()
        index.add(rec("low", "alpha epsilon zeta"))
        index.add(rec("mid", "alpha beta delta"))
        index.add(rec("high", "alpha beta gamma"))
        results = index.candidates(rec("q", "alpha beta gamma"), k=3)
        assert [r.record_id for r, _ in results] == ["high", "mid", "low"]
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_equal_scores_tie_break_on_id(self):
        index = ServingIndex()
        for rid in ("zeta", "alpha", "mike"):
            index.add(rec(rid, "shared token"))
        results = index.candidates(rec("q", "shared token"), k=3)
        assert [r.record_id for r, _ in results] == ["alpha", "mike", "zeta"]

    def test_k_truncates(self):
        index = ServingIndex()
        for i in range(10):
            index.add(rec(f"r{i}", "common words here"))
        assert len(index.candidates(rec("q", "common words"), k=3)) == 3

    def test_empty_catalog(self):
        assert ServingIndex().candidates(rec("q", "anything at all")) == []

    def test_query_with_no_tokens(self):
        index = ServingIndex()
        index.add(rec("a", "real content"))
        # single-char tokens are dropped by the shared tokenizer rule
        assert index.candidates(rec("q", "a b c")) == []

    def test_no_shared_tokens(self):
        index = ServingIndex()
        index.add(rec("a", "completely different subject"))
        assert index.candidates(rec("q", "unrelated query terms")) == []

    def test_min_shared_tokens_filter(self):
        index = ServingIndex(min_shared_tokens=2)
        index.add(rec("one", "apple banana"))
        index.add(rec("two", "apple cherry"))
        results = index.candidates(rec("q", "apple banana"))
        assert [r.record_id for r, _ in results] == ["one"]

    def test_invalid_k(self):
        index = ServingIndex()
        with pytest.raises(ValueError):
            index.candidates(rec("q", "word"), k=0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ServingIndex(threshold=1.5)
        with pytest.raises(ValueError):
            ServingIndex(min_shared_tokens=0)
        with pytest.raises(ValueError):
            ServingIndex(default_k=0)


class TestAgainstBlocker:
    def test_matches_offline_blocker_candidates(self):
        """The index over the right table retrieves the same candidate set
        the offline blocker pairs up, for the same threshold."""
        from repro.data import OverlapBlocker

        ds = load_dataset("REL-HETER")
        blocker = OverlapBlocker(threshold=0.3)
        offline = blocker.block(ds.left_table, ds.right_table)
        expected = {}
        for left, right in offline.candidates:
            expected.setdefault(left.record_id, set()).add(right.record_id)

        index = ServingIndex(threshold=0.3)
        index.add_many(ds.right_table)
        for left in ds.left_table:
            got = {r.record_id
                   for r, _ in index.candidates(left, k=len(ds.right_table))}
            assert got == expected.get(left.record_id, set())


class TestConcurrency:
    def test_concurrent_mutation_and_query(self):
        index = ServingIndex()
        for i in range(50):
            index.add(rec(f"seed{i}", f"token{i % 5} shared"))
        errors = []

        def churn():
            try:
                for i in range(200):
                    index.add(rec(f"churn{i % 10}", f"token{i % 5} shared"))
                    index.remove(f"churn{(i + 5) % 10}")
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def query():
            try:
                for _ in range(200):
                    index.candidates(rec("q", "shared token0"), k=5)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=churn),
                   threading.Thread(target=query),
                   threading.Thread(target=query)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = index.stats()
        assert stats["records"] == len(index)

    def test_snapshot_no_torn_reads_deterministic_order(self):
        """candidates() snapshots under the lock and scores outside it: a
        mutator thread churning *unrelated* records (disjoint tokens) must
        never change a query's results -- same ids, same scores, same
        order, every time."""
        index = ServingIndex()
        for i in range(20):
            index.add(rec(f"stable{i:02d}", f"quantum flux unit{i % 4}"))
        baseline = index.candidates(rec("q", "quantum flux unit0"), k=8)
        assert baseline  # the query must actually retrieve something
        errors = []
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                index.add(rec(f"churn{i % 25}", f"pelican brief page{i % 7}"))
                index.add(rec(f"churn{i % 25}", f"osprey nest twig{i % 3}"))
                index.remove(f"churn{(i + 11) % 25}")
                i += 1

        def query():
            try:
                for _ in range(400):
                    got = index.candidates(rec("q", "quantum flux unit0"),
                                           k=8)
                    if got != baseline:
                        errors.append((baseline, got))
                        return
            except Exception as error:  # pragma: no cover
                errors.append(error)

        mutator = threading.Thread(target=churn)
        queriers = [threading.Thread(target=query) for _ in range(2)]
        mutator.start()
        for t in queriers:
            t.start()
        for t in queriers:
            t.join()
        stop.set()
        mutator.join()
        assert errors == []
        # and the churned records are really interleaved-in, not lost
        assert any(f"churn{i}" in index for i in range(25))
