"""GET /metrics: MetricsRegistry snapshot over HTTP, gated like /admin/*
(loopback without a token, X-Admin-Token otherwise)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.data.io import _record_to_dict
from repro.obs import telemetry_session
from repro.serve import MatchHTTPServer, MatchServer, ServerConfig


def get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request) as reply:
        return reply.status, json.loads(reply.read())


class TestMetricsRoute:
    def test_loopback_allowed_without_token(self, bundle):
        server = MatchServer(bundle, ServerConfig())
        with MatchHTTPServer(server, port=0) as http:
            status, payload = get(http.address + "/metrics")
        assert status == 200
        assert payload["status"] == "ok"
        # no telemetry session active: the null registry snapshot is empty
        assert payload["enabled"] is False
        assert payload["metrics"] == {}

    def test_token_required_when_configured(self, bundle):
        server = MatchServer(bundle, ServerConfig())
        with MatchHTTPServer(server, port=0,
                             admin_token="sesame") as http:
            with pytest.raises(urllib.error.HTTPError) as denied:
                get(http.address + "/metrics")
            assert denied.value.code == 403
            detail = json.loads(denied.value.read())
            assert "X-Admin-Token" in detail["detail"]
            status, payload = get(http.address + "/metrics",
                                  headers={"X-Admin-Token": "sesame"})
        assert status == 200
        assert payload["status"] == "ok"

    def test_wrong_token_denied(self, bundle):
        server = MatchServer(bundle, ServerConfig())
        with MatchHTTPServer(server, port=0, admin_token="right") as http:
            with pytest.raises(urllib.error.HTTPError) as denied:
                get(http.address + "/metrics",
                    headers={"X-Admin-Token": "wrong"})
            assert denied.value.code == 403

    def test_snapshot_reflects_served_traffic(self, bundle, pairs,
                                              tmp_path):
        server = MatchServer(bundle, ServerConfig())
        with telemetry_session(path=tmp_path / "run.jsonl"):
            with MatchHTTPServer(server, port=0) as http:
                body = json.dumps({
                    "left": _record_to_dict(pairs[0].left),
                    "right": _record_to_dict(pairs[0].right),
                }).encode()
                request = urllib.request.Request(
                    http.address + "/score", data=body,
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request) as reply:
                    assert reply.status == 200
                status, payload = get(http.address + "/metrics")
        assert status == 200
        assert payload["enabled"] is True
        metrics = payload["metrics"]
        assert metrics["serve.requests"]["value"] >= 1
        assert metrics["serve.responses"]["value"] >= 1
        # snapshots are plain JSON all the way down
        json.dumps(metrics)

    def test_unknown_get_still_404s(self, bundle):
        server = MatchServer(bundle, ServerConfig())
        with MatchHTTPServer(server, port=0) as http:
            with pytest.raises(urllib.error.HTTPError) as missing:
                get(http.address + "/metricz")
            assert missing.value.code == 404
