"""ServingPool routing: bit-identical scoring across replicas, load-aware
dispatch, explicit backpressure, shard-routed catalog ops, the serial
fallback, and the shared-memory weight store underneath it all."""

import numpy as np
import pytest

from repro.data.dataset import CandidatePair
from repro.data.records import EntityRecord
from repro.parallel.pool import force_serial, fork_available
from repro.serve import (
    MatchServer, ModelBundle, Overloaded, ServerConfig, SharedBundleWeights,
)
from repro.serve.pool import (
    PoolConfig, ServingPool, _approx_tokens, _owned_shards,
)

from .conftest import make_model

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


@pytest.fixture(scope="module")
def catalog(dataset):
    return list(dataset.right_table)


@pytest.fixture(scope="module")
def pool(bundle, catalog):
    config = PoolConfig(replicas=2, shards=3,
                        server=ServerConfig(max_queue=512))
    pool = ServingPool(bundle, config)
    pool.catalog_add(catalog)
    with pool:
        yield pool


class TestPoolConfig:
    def test_shards_default_to_replicas(self):
        assert PoolConfig(replicas=3).shards == 3
        assert PoolConfig(replicas=2, shards=5).shards == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(replicas=0)
        with pytest.raises(ValueError):
            PoolConfig(replicas=1, shards=0)
        with pytest.raises(ValueError):
            PoolConfig(replicas=1, max_outstanding=0)

    def test_shard_ownership_partitions(self):
        owned = [_owned_shards(r, 2, 5) for r in range(2)]
        assert sorted(owned[0] + owned[1]) == [0, 1, 2, 3, 4]
        assert not set(owned[0]) & set(owned[1])


class TestDispatchPolicy:
    """Router policy, exercised without processes."""

    def _pool_with_fake_replicas(self, bundle, loads):
        pool = ServingPool(bundle, PoolConfig(replicas=len(loads),
                                              max_outstanding=4))

        class Fake:
            def __init__(self, index, pairs, tokens):
                self.index = index
                self.outstanding_pairs = pairs
                self.outstanding_tokens = tokens
                self.live = True

        pool._replicas = [Fake(i, p, t) for i, (p, t) in enumerate(loads)]
        return pool

    def test_picks_least_outstanding_pairs(self, bundle):
        pool = self._pool_with_fake_replicas(bundle, [(2, 10), (1, 99)])
        assert pool._pick_replica().index == 1

    def test_token_estimate_breaks_ties(self, bundle):
        pool = self._pool_with_fake_replicas(bundle, [(1, 50), (1, 10)])
        assert pool._pick_replica().index == 1

    def test_index_breaks_full_ties(self, bundle):
        pool = self._pool_with_fake_replicas(bundle, [(1, 10), (1, 10)])
        assert pool._pick_replica().index == 0

    def test_skips_dead_and_full_replicas(self, bundle):
        pool = self._pool_with_fake_replicas(bundle, [(0, 0), (4, 0), (3, 0)])
        pool._replicas[0].live = False
        assert pool._pick_replica().index == 2  # 0 dead, 1 at the cap
        pool._replicas[2].outstanding_pairs = 4
        assert pool._pick_replica() is None

    def test_approx_tokens_counts_both_records(self):
        pair = CandidatePair(EntityRecord.text_record("a", "one two"),
                             EntityRecord.text_record("b", "three"))
        assert _approx_tokens(pair) == 3

    def test_submit_to_stopped_pool_sheds(self, bundle, pairs):
        pool = ServingPool(bundle, PoolConfig(replicas=1))
        with pytest.raises(Overloaded):
            pool.submit(pairs[0])


@needs_fork
class TestForkedPool:
    def test_runs_replicated(self, pool):
        assert not pool.serial
        assert pool.is_running
        stats = pool.stats()
        assert stats["mode"] == "pool"
        assert stats["live"] == [0, 1]
        assert set(stats["replica_stats"]) == {0, 1}

    def test_scores_match_single_server(self, pool, bundle, pairs):
        """Same probabilities as one MatchServer, to float32 reduction
        tolerance: replicas form their own micro-batches, and batch
        composition changes padding/accumulation shapes in the engine,
        so pool-vs-single equality is not bitwise.  The *bitwise*
        contract is replay of each replica's own logged batches
        (test_pool_swap.py, benchmarks/bench_serving_pool.py)."""
        reference = MatchServer(bundle, ServerConfig())
        responses = pool.score_batch(pairs)
        expected = reference.score_batch(pairs)
        for got, want in zip(responses, expected):
            assert np.allclose(got.probs, want.probs, rtol=1e-5, atol=1e-7)
            assert got.prediction == want.prediction
        assert all(r.replica in (0, 1) for r in responses)

    def test_load_spreads_across_replicas(self, pool, pairs):
        pendings = [pool.submit(pair) for pair in list(pairs) * 4]
        replicas = {p.result(timeout=30.0).replica for p in pendings}
        assert replicas == {0, 1}

    def test_match_merges_shards_like_unsharded(self, pool, bundle, catalog,
                                                pairs):
        reference = MatchServer(bundle, ServerConfig())
        reference.catalog_add(catalog)
        got = pool.match(pairs[0].left, k=4, timeout=30.0)
        want = reference.match(pairs[0].left, k=4)
        assert [c.record.record_id for c in got.candidates] == \
            [c.record.record_id for c in want.candidates]
        assert [c.block_score for c in got.candidates] == \
            [c.block_score for c in want.candidates]
        for mine, theirs in zip(got.candidates, want.candidates):
            # match fans candidates into batches whose composition depends
            # on shard placement -> float32 tolerance, not bitwise
            assert np.allclose(mine.response.probs, theirs.response.probs,
                               rtol=1e-5, atol=1e-7)

    def test_catalog_churn_routes_to_shards(self, pool, pairs):
        fresh = EntityRecord.text_record(
            "pool-test-rec", "blue habor mexican restaurant new york")
        assert pool.catalog_add([fresh]) == 1
        assert pool.catalog_size() == 75 + 1
        found = pool.match(fresh, k=3, timeout=30.0)
        assert found.candidates
        assert found.candidates[0].record.record_id == "pool-test-rec"
        assert pool.catalog_remove(["pool-test-rec", "missing-id"]) == 1
        gone = pool.match(fresh, k=3, timeout=30.0)
        assert all(c.record.record_id != "pool-test-rec"
                   for c in gone.candidates)

    def test_stats_counts_requests(self, pool, pairs):
        before = pool.stats()
        pool.score(pairs[0], timeout=30.0)
        after = pool.stats()
        assert after["requests"] >= before["requests"] + 1
        assert after["responses"] >= before["responses"] + 1
        assert after["catalog_records"] == pool.catalog_size()


class TestSerialFallback:
    def test_full_surface_without_fork(self, backbone, bundle, catalog,
                                       pairs):
        with force_serial():
            pool = ServingPool(bundle, PoolConfig(replicas=2, shards=3))
            pool.catalog_add(catalog)
            with pool:
                assert pool.serial
                response = pool.score(pairs[0], timeout=30.0)
                assert response.replica is None
                match = pool.match(pairs[0].left, k=3, timeout=30.0)
                assert match.candidates
                stats = pool.stats()
                assert stats["mode"] == "serial"
                assert stats["shards"] == 3
                other = ModelBundle.from_model(make_model(backbone),
                                               threshold=0.5, name="b2")
                assert pool.swap(other) == 2
                assert pool.score(pairs[0], timeout=30.0).bundle_name == "b2"
            assert not pool.is_running

    def test_serial_matches_unsharded_candidates(self, bundle, catalog,
                                                 pairs):
        reference = MatchServer(bundle, ServerConfig())
        reference.catalog_add(catalog)
        with force_serial():
            pool = ServingPool(bundle, PoolConfig(replicas=1, shards=4))
            pool.catalog_add(catalog)
            with pool:
                got = pool.match(pairs[1].left, k=5, timeout=30.0)
        want = reference.match(pairs[1].left, k=5)
        assert [c.record.record_id for c in got.candidates] == \
            [c.record.record_id for c in want.candidates]


class TestSharedBundleWeights:
    @pytest.fixture()
    def models(self, backbone, tmp_path):
        publisher = make_model(backbone)
        bundle = ModelBundle.from_model(publisher, threshold=0.4, name="pub")
        bundle.save(tmp_path / "b")
        replica = ModelBundle.load(tmp_path / "b").model
        return publisher, replica

    def test_publish_adopt_roundtrip(self, models):
        publisher, replica = models
        with SharedBundleWeights(publisher, replicas=1) as store:
            assert store.version == 0
            assert store.publish(publisher, name="pub", threshold=0.4) == 1
            assert store.read_meta(1) == ("pub", 0.4)
            version = store.adopt(replica, replica=0, seen=0)
            assert version == 1
            assert store.adopted_versions() == [1]
            for (_, mine), (_, theirs) in zip(replica.named_parameters(),
                                              publisher.named_parameters()):
                assert np.array_equal(mine.data, theirs.data)

    def test_adopted_views_are_zero_copy(self, models):
        publisher, replica = models
        with SharedBundleWeights(publisher, replicas=1) as store:
            store.publish(publisher)
            store.adopt(replica, replica=0, seen=0)
            _, first = next(iter(replica.named_parameters()))
            assert first.data.base is not None  # a view, not a copy
            slot_view = store.slot_views(1)[0]
            slot_view += 1.0  # mutate through the store...
            assert np.array_equal(first.data, slot_view)  # ...model sees it

    def test_adopt_is_noop_at_same_version(self, models):
        publisher, replica = models
        with SharedBundleWeights(publisher, replicas=1) as store:
            store.publish(publisher)
            assert store.adopt(replica, replica=0, seen=1) == 1

    def test_double_buffer_guard_times_out_on_stuck_replica(self, models):
        publisher, replica = models
        with SharedBundleWeights(publisher, replicas=1,
                                 guard_timeout_s=0.05) as store:
            store.publish(publisher, live=[0])   # v1 -> slot 1
            store.publish(publisher, live=[0])   # v2 -> slot 0, no guard yet
            # v3 reuses slot 1; replica never adopted past 0 -> guard must
            # give up after its timeout instead of deadlocking the swap
            assert store.publish(publisher, live=[0]) == 3

    def test_threshold_none_roundtrips(self, models):
        publisher, _ = models
        with SharedBundleWeights(publisher, replicas=1) as store:
            store.publish(publisher, name="x", threshold=None)
            assert store.read_meta(1) == ("x", None)

    def test_fingerprint_mismatch_rejected(self, models, backbone):
        publisher, _ = models
        with SharedBundleWeights(publisher, replicas=1) as store:
            other = make_model(backbone, max_len=48)
            # same architecture -> same fingerprint, accepted
            store.publish(other)

            class Tiny:
                def named_parameters(self):
                    class P:
                        data = np.zeros((2, 2), dtype=np.float64)
                    return [("only.weight", P())]

                def parameters(self):
                    return [p for _, p in self.named_parameters()]

            with pytest.raises(ValueError, match="fingerprint"):
                store.publish(Tiny())

    def test_validation(self, models):
        publisher, _ = models
        with pytest.raises(ValueError):
            SharedBundleWeights(publisher, replicas=0)
        with pytest.raises(ValueError):
            SharedBundleWeights(publisher, replicas=1, slots=1)
