"""Tier-1 smoke pass over the serving-pool benchmark logic.

Runs :func:`benchmarks.bench_serving_pool.run_pool_comparison` on the
tiny cached backbone at 1 and 2 replicas and checks its structural
outputs -- throughput numbers exist, every replica's logged micro-batches
replay bit-identically offline, and the pool's responses match the
single-process server's to float32 reduction tolerance -- WITHOUT
asserting anything about wall-clock
speed, so the test is stable on loaded (or single-core) CI machines. The
real replica-scaling comparison lives in
``benchmarks/bench_serving_pool.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_serving_pool import run_pool_comparison  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.parallel.pool import fork_available  # noqa: E402
from repro.serve import ModelBundle  # noqa: E402

from .conftest import make_model  # noqa: E402


@pytest.mark.smoke
def test_pool_benchmark_smoke(backbone):
    bundle = ModelBundle.from_model(make_model(backbone, max_len=64),
                                    threshold=0.5, name="tiny")
    pairs = load_dataset("REL-HETER").test[:10]

    result = run_pool_comparison(bundle, pairs, replica_counts=(1, 2),
                                 iterations=1, max_batch_pairs=8,
                                 token_budget=1024)
    assert result["pairs"] == 10 and result["iterations"] == 1
    assert result["single_pps"] > 0
    expected_mode = "pool" if fork_available() else "serial"
    assert result["mode"] == expected_mode
    assert set(result["arms"]) == {1, 2}
    for replicas, arm in result["arms"].items():
        assert arm["pairs_per_sec"] > 0
        assert arm["speedup_vs_single"] > 0
        assert arm["shed"] == 0 and arm["deaths"] == 0
        # the identity contract, at smoke scale and every replica count
        assert arm["bit_identical"] is True
        assert arm["replayed_rows"] == 10
        assert arm["matches_single"] is True
        assert arm["max_abs_vs_single"] < 1e-5
        if fork_available():
            assert arm["replicas_used"] == list(range(replicas))
