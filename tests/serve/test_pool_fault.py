"""Fault containment: a SIGKILLed replica is detected, its in-flight
requests are re-dispatched to survivors (zero accepted requests lost),
and a replacement is respawned from the current catalog journal."""

import os
import signal
import time

import numpy as np
import pytest

from repro.data.records import EntityRecord
from repro.parallel.pool import fork_available
from repro.serve import MatchServer, Overloaded, ServerConfig
from repro.serve.pool import PoolConfig, ServingPool
from repro.serve.shard import shard_of

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


def submit_with_retry(pool, pair, deadline=30.0):
    end = time.monotonic() + deadline
    while True:
        try:
            return pool.submit(pair)
        except Overloaded:
            if time.monotonic() > end:
                raise
            time.sleep(0.002)


class TestReplicaDeath:
    def test_kill_one_replica_loses_nothing(self, bundle, dataset):
        """The acceptance scenario: a stream is in flight, one replica is
        SIGKILLed, and every accepted request still resolves."""
        pairs = (list(dataset.test) * 3)[:36]
        pool = ServingPool(bundle, PoolConfig(
            replicas=2, shards=2, server=ServerConfig(max_queue=1024)))
        with pool:
            pendings = [pool.submit(pair) for pair in pairs[:24]]
            os.kill(pool._replicas[0].proc.pid, signal.SIGKILL)
            pendings += [submit_with_retry(pool, pair)
                         for pair in pairs[24:]]
            responses = [p.result(timeout=60.0) for p in pendings]
            assert len(responses) == len(pairs)

            stats = pool.stats()
            assert stats["deaths"] == 1
            assert stats["respawns"] == 1
            assert stats["redispatched"] >= 1
            assert stats["live"] == [0, 1]  # healed

            # the respawned replica serves again (its shards rebuilt from
            # the journal) and scores are still the model's numbers
            reference = MatchServer(bundle, ServerConfig())
            again = pool.score(pairs[0], timeout=30.0)
            assert np.array_equal(again.probs,
                                  reference.score(pairs[0]).probs)

    def test_respawned_replica_rebuilds_catalog_shards(self, bundle,
                                                       dataset):
        catalog = list(dataset.right_table)
        pool = ServingPool(bundle, PoolConfig(replicas=2, shards=2))
        pool.catalog_add(catalog)
        with pool:
            query = dataset.test[0].left
            before = pool.match(query, k=4, timeout=30.0)
            assert before.candidates
            for victim in list(pool._replicas):
                os.kill(victim.proc.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while pool.stats()["respawns"] < 2:
                assert time.monotonic() < deadline, "respawn never happened"
                time.sleep(0.01)
            after = pool.match(query, k=4, timeout=60.0)
            assert [c.record.record_id for c in after.candidates] == \
                [c.record.record_id for c in before.candidates]

    def test_respawn_disabled_degrades_to_survivors(self, bundle, dataset):
        pool = ServingPool(bundle, PoolConfig(replicas=2, shards=2,
                                              respawn=False))
        with pool:
            os.kill(pool._replicas[1].proc.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while pool.stats()["deaths"] < 1:
                assert time.monotonic() < deadline, "death never detected"
                time.sleep(0.01)
            assert pool.stats()["live"] == [0]
            assert pool.stats()["respawns"] == 0
            response = pool.score(dataset.test[0], timeout=30.0)
            assert response.replica == 0

    def test_catalog_update_with_dead_owner_survives_respawn(self, bundle,
                                                             dataset):
        """A record added while its shard's owner is dead must still be
        servable afterwards -- the journal, not the dead process, is the
        source of truth the respawn rebuilds from."""
        pool = ServingPool(bundle, PoolConfig(replicas=2, shards=2))
        with pool:
            fresh = EntityRecord.text_record(
                "fault-fresh", "blue habor mexican downtown")
            owner = shard_of(fresh.record_id, pool.config.shards) \
                % pool.config.replicas
            os.kill(pool._replicas[owner].proc.pid, signal.SIGKILL)
            # race the respawn on purpose: whether the add lands on the
            # dead handle, the dying gap, or the fresh fork, the journal
            # keeps it and the owning shard must end up serving it
            assert pool.catalog_add([fresh]) == 1
            deadline = time.monotonic() + 30.0
            while pool.stats()["respawns"] < 1:
                assert time.monotonic() < deadline, "respawn never happened"
                time.sleep(0.01)
            assert pool.catalog_add([fresh]) == 0  # journaled already
            found = pool.match(fresh, k=3, timeout=60.0)
            assert found.candidates
            assert found.candidates[0].record.record_id == "fault-fresh"
