"""Pool-wide hot-swap contract: one shared-memory publish flips every
replica, and no response anywhere in the pool ever mixes model versions
within a batch -- proven by replaying every replica's logged batches
offline and requiring bit-identical probabilities."""

import numpy as np
import pytest

from repro.infer import EngineConfig, InferenceEngine
from repro.parallel.pool import fork_available
from repro.serve import ModelBundle, ServerConfig
from repro.serve.pool import PoolConfig, ServingPool

from .conftest import make_model

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


@pytest.fixture(scope="module")
def two_bundles(backbone, tmp_path_factory):
    model_a = make_model(backbone)
    bundle_a = ModelBundle.from_model(model_a, threshold=0.5, name="a")
    path = tmp_path_factory.mktemp("pool_bundles") / "b"
    bundle_a.save(path)
    bundle_b = ModelBundle.load(path)
    bundle_b.name = "b"
    for parameter in bundle_b.model.parameters():
        parameter.data += 0.05
    return bundle_a, bundle_b


class TestPoolSwap:
    def test_swap_reaches_every_replica(self, two_bundles, pairs):
        bundle_a, bundle_b = two_bundles
        pool = ServingPool(bundle_a, PoolConfig(replicas=2, shards=2))
        with pool:
            assert pool.version == 1
            version = pool.swap(bundle_b)
            assert version == 2
            # both replicas must answer with the new version
            seen = {}
            deadline = 60.0
            import time
            end = time.monotonic() + deadline
            while set(seen) != {0, 1} and time.monotonic() < end:
                for response in pool.score_batch(list(pairs)[:8],
                                                 timeout=30.0):
                    if response.model_version == version:
                        seen[response.replica] = response.bundle_name
            assert set(seen) == {0, 1}
            assert set(seen.values()) == {"b"}

    def test_exactly_one_version_per_response_pool_wide(self, two_bundles,
                                                        pairs):
        """Stream bursts across both replicas while swapping mid-flight;
        every logged batch on every replica must replay bit-identically
        under the single bundle its responses name."""
        bundle_a, bundle_b = two_bundles
        config = ServerConfig(max_batch_pairs=4, token_budget=512,
                              max_queue=4096, max_wait_s=0.001,
                              record_batches=True)
        pool = ServingPool(bundle_a, PoolConfig(replicas=2, shards=2,
                                                server=config))
        pairs = list(pairs)
        pendings = []
        with pool:
            for round_ in range(6):
                round_pendings = []
                for pair in pairs:
                    pending = pool.submit(pair)
                    pendings.append(pending)
                    round_pendings.append(pending)
                pool.swap(two_bundles[round_ % 2])
                for pending in round_pendings:
                    pending.result(timeout=60.0)
            responses = [pending.result(timeout=0.0)
                         for pending in pendings]
            assert len(responses) == 6 * len(pairs)

            versions = {response.model_version for response in responses}
            assert len(versions) > 1, "swaps should land mid-stream"
            names = {response.bundle_name for response in responses}
            assert names <= {"a", "b"}

            logs = pool.batch_logs()
            assert set(logs) == {0, 1}

        by_batch = {}
        for response in responses:
            by_batch.setdefault((response.replica, response.batch_id),
                                []).append(response)

        engine = InferenceEngine(EngineConfig(
            token_budget=config.token_budget,
            max_batch_pairs=config.max_batch_pairs,
            cache_capacity=config.cache_capacity))
        model_by_name = {"a": bundle_a.model, "b": bundle_b.model}
        replayed_batches = 0
        for replica, entries in logs.items():
            for entry in entries:
                batch_responses = by_batch.get((replica, entry["batch_id"]))
                if batch_responses is None:
                    continue  # a batch of another test's leftover traffic
                names = {r.bundle_name for r in batch_responses}
                versions = {r.model_version for r in batch_responses}
                assert len(names) == 1 and len(versions) == 1, \
                    "a batch mixed model versions"
                assert versions == {entry["version"]}
                replayed = engine.predict_proba(model_by_name[names.pop()],
                                                entry["pairs"])
                got = np.stack(sorted((r.probs for r in batch_responses),
                                      key=lambda p: tuple(p)))
                # the logged batch may contain more pairs than this test's
                # responses only if batches interleaved with other traffic;
                # here the pool is private, so sizes must line up
                assert len(replayed) == len(batch_responses)
                expected = np.stack(sorted(replayed, key=lambda p: tuple(p)))
                assert np.array_equal(got, expected)
                replayed_batches += 1
        assert replayed_batches >= 2

    def test_swap_keeps_threshold_and_name(self, two_bundles, pairs):
        bundle_a, bundle_b = two_bundles
        pool = ServingPool(bundle_a, PoolConfig(replicas=1, shards=1))
        with pool:
            pool.swap(bundle_b)
            import time
            end = time.monotonic() + 60.0
            response = pool.score(pairs[0], timeout=30.0)
            while response.model_version < 2 and time.monotonic() < end:
                response = pool.score(pairs[0], timeout=30.0)
            assert response.model_version == 2
            assert response.bundle_name == "b"
