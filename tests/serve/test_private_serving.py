"""Cross-party CLK serving: filters-only catalogs, Dice scoring through
server / pool / HTTP, and the acceptance pin of this mode -- NO raw
attribute value ever crosses the frontend or a replica pipe.

The sentinel construction: every catalog record carries globally unique
marker words as its attribute values.  The test then records ``repr`` of
every payload that crosses a process or wire boundary (replica pipe
sends, collector receipts, worker spawn journals, HTTP request/response
bodies) while driving real CLK traffic, and asserts no sentinel -- and
no salt -- appears anywhere.  CLK encoding is keyed hashing, so if a
sentinel shows up the plaintext leaked around the encoder, not through
it.
"""

import base64
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data.dataset import CandidatePair
from repro.data.records import EntityRecord
from repro.parallel.pool import force_serial, fork_available
from repro.privacy import ClkCandidateIndex, ClkConfig, ClkEncoder, \
    clk_to_bytes
from repro.serve import (
    MatchHTTPServer, MatchServer, ServerConfig, handle_request,
    serve_requests,
)
from repro.serve.pool import PoolConfig, ServingPool, _Replica

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")

#: the shared secret; must never appear on any wire or pipe
SALT = "cross-party-secret-salt"

#: globally unique marker words -- these are the attribute VALUES of the
#: sentinel catalog, and the strings the leak check greps every payload
#: for (record *ids* are allowed on the wire; values are not)
SENTINELS = ("xylophone", "quixotic", "zanzibar", "marzipan", "obsidian",
             "juggernaut", "palindrome", "kaleidoscope", "labyrinth",
             "hurricane", "telescope", "catamaran")


def sentinel_records(n=6):
    records = []
    for i in range(n):
        records.append(EntityRecord(
            record_id=f"s{i}", kind="relational",
            values={"title": f"{SENTINELS[2 * i]} {SENTINELS[2 * i + 1]}",
                    "maker": SENTINELS[(2 * i + 3) % len(SENTINELS)]}))
    return records


@pytest.fixture(scope="module")
def party_encoder():
    """The data party's encoder -- lives in the TEST, never in a server."""
    return ClkEncoder(SALT, ClkConfig(nbits=256, num_hashes=8))


@pytest.fixture(scope="module")
def catalog_entries(party_encoder):
    records = sentinel_records()
    return records, [(r.record_id, party_encoder.encode_record(r))
                     for r in records]


def assert_no_plaintext(payloads, records):
    """No sentinel value, no salt, in the repr of any payload."""
    assert payloads, "leak check ran over zero payloads"
    for text in payloads:
        for record in records:
            for value in record.values.values():
                for word in value.split():
                    assert word not in text, \
                        f"plaintext {word!r} leaked in payload: {text[:200]}"
        assert SALT not in text


# ----------------------------------------------------------------------
# MatchServer, cross-party (filters only, no encoder server-side)
# ----------------------------------------------------------------------
class TestServerCrossParty:
    def make_server(self, bundle, entries):
        server = MatchServer(bundle, clk_index=ClkCandidateIndex(words=4),
                             clk_threshold=0.6, candidate_mode="clk")
        server.catalog_add_clk(entries)
        return server

    def test_clk_match_ranks_by_dice(self, bundle, catalog_entries):
        records, entries = catalog_entries
        server = self.make_server(bundle, entries)
        response = server.clk_match("query-0", entries[0][1], k=3)
        assert response.record_id == "query-0"
        assert response.best.record_id == "s0"
        assert response.best.score == 1.0 and response.best.is_match
        scores = [c.score for c in response.candidates]
        assert scores == sorted(scores, reverse=True)
        assert response.threshold == 0.6
        assert all((c.score >= 0.6) == c.is_match
                   for c in response.candidates)
        assert response.best in response.matches()

    def test_candidates_carry_no_records(self, bundle, catalog_entries):
        # ClkCandidate deliberately has no record slot: in cross-party
        # mode the server holds none, so the response type cannot either
        _, entries = catalog_entries
        server = self.make_server(bundle, entries)
        candidate = server.clk_match("q", entries[1][1], k=1).best
        assert not hasattr(candidate, "record")
        assert set(vars(candidate)) == {"record_id", "score", "is_match"}

    def test_plaintext_match_rejected(self, bundle, catalog_entries):
        records, entries = catalog_entries
        server = self.make_server(bundle, entries)
        with pytest.raises(ValueError):
            server.submit_match(records[0], k=2)

    def test_clk_mode_requires_index(self, bundle):
        with pytest.raises(ValueError):
            MatchServer(bundle, candidate_mode="clk")
        server = MatchServer(bundle)
        with pytest.raises(ValueError):
            server.set_candidate_mode("clk")
        with pytest.raises(ValueError):
            server.clk_match("q", np.zeros(4, dtype=np.uint64))
        with pytest.raises(ValueError):
            server.clk_catalog_size()

    def test_health_and_stats_expose_clk(self, bundle, catalog_entries):
        _, entries = catalog_entries
        server = self.make_server(bundle, entries)
        health = server.health()
        assert health["candidate_mode"] == "clk"
        assert health["candidate_index"] == "clk"
        assert health["clk_catalog_size"] == len(entries)
        assert health["catalog_size"] == 0  # sparse stays empty
        stats = server.stats()
        assert stats["clk_index"]["has_encoder"] is False
        assert stats["clk_index"]["plaintext_records"] == 0

    def test_catalog_remove_counts_filter_only_ids(self, bundle,
                                                   catalog_entries):
        _, entries = catalog_entries
        server = self.make_server(bundle, entries)
        assert server.catalog_remove(["s0", "nope"]) == 1
        assert server.clk_catalog_size() == len(entries) - 1
        found = server.clk_match("q", entries[0][1], k=len(entries))
        assert "s0" not in [c.record_id for c in found.candidates]

    def test_readd_replaces_not_grows(self, bundle, catalog_entries):
        _, entries = catalog_entries
        server = self.make_server(bundle, entries)
        assert server.catalog_add_clk(entries[:2]) == 0  # replacements
        assert server.clk_catalog_size() == len(entries)


# ----------------------------------------------------------------------
# MatchServer, single-party (encoder attached; CLK generates, LM scores)
# ----------------------------------------------------------------------
class TestServerSingleParty:
    def make_server(self, bundle):
        encoder = ClkEncoder(SALT, ClkConfig(nbits=256, num_hashes=8))
        index = ClkCandidateIndex(encoder=encoder, default_k=3)
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4),
                             clk_index=index, candidate_mode="clk")
        server.catalog_add(sentinel_records())
        return server

    def test_catalogs_stay_in_lockstep(self, bundle):
        server = self.make_server(bundle)
        assert server.catalog_size() == 6       # sparse got the records
        assert server.clk_catalog_size() == 6   # clk encoded them too
        assert server.stats()["clk_index"]["plaintext_records"] == 6

    def test_match_scores_clk_candidates_with_model(self, bundle):
        # candidate generation is Dice over filters; scoring is the full
        # LM path -- the single-party shape the trade-off bench measures
        server = self.make_server(bundle)
        query = sentinel_records()[2]
        response = server.match(query, k=3)
        assert response.candidates
        ids = [c.record.record_id for c in response.candidates]
        assert "s2" in ids  # its own twin survives CLK blocking
        for candidate in response.candidates:
            assert 0.0 <= candidate.probability <= 1.0
            assert candidate.block_score > 0.0  # the Dice score

    def test_clk_match_also_served(self, bundle):
        server = self.make_server(bundle)
        query = server.clk_index.encoder.encode_record(
            sentinel_records()[1])
        assert server.clk_match("q", query, k=1).best.record_id == "s1"


# ----------------------------------------------------------------------
# ServingPool: serial fallback and forked replicas
# ----------------------------------------------------------------------
def make_pool(bundle, **kwargs):
    kwargs.setdefault("clk_words", 4)
    kwargs.setdefault("clk_threshold", 0.6)
    kwargs.setdefault("candidate_mode", "clk")
    return ServingPool(bundle, PoolConfig(replicas=2, shards=3), **kwargs)


class TestPoolSerial:
    def test_clk_match_and_rejection(self, bundle, catalog_entries):
        records, entries = catalog_entries
        pool = make_pool(bundle)
        with force_serial():
            with pool:
                assert pool.catalog_add_clk(entries) == len(entries)
                assert pool.clk_catalog_size() == len(entries)
                response = pool.clk_match("q", entries[3][1], k=2)
                assert response.best.record_id == "s3"
                assert response.best.score == 1.0
                with pytest.raises(ValueError):
                    pool.submit_match(records[0], k=2)
                health = pool.health()
                assert health["mode"] == "serial"
                assert health["candidate_index"] == "clk"
                assert health["clk_catalog_size"] == len(entries)

    def test_clk_mode_requires_shape(self, bundle):
        with pytest.raises(ValueError):
            ServingPool(bundle, PoolConfig(replicas=1),
                        candidate_mode="clk")


@needs_fork
class TestPoolForked:
    @pytest.fixture()
    def pool(self, bundle, catalog_entries):
        _, entries = catalog_entries
        pool = make_pool(bundle)
        with pool:
            pool.catalog_add_clk(entries)
            yield pool

    def test_clk_match_merges_shards(self, pool, catalog_entries):
        # shards=3 over replicas=2: every query is a scatter/gather whose
        # merged ranking must match the single-index answer
        _, entries = catalog_entries
        reference = ClkCandidateIndex(words=4)
        reference.add_clk_many(entries)
        for rid, clk in entries:
            response = pool.clk_match("q", clk, k=3)
            got = [(c.record_id, round(c.score, 12))
                   for c in response.candidates]
            expected = [(rid2, round(score, 12))
                        for rid2, score in reference.search(clk, k=3)]
            assert got == expected
            assert response.best.record_id == rid

    def test_remove_propagates_to_replicas(self, pool, catalog_entries):
        _, entries = catalog_entries
        assert pool.catalog_remove(["s4"]) == 1
        found = pool.clk_match("q", entries[4][1], k=len(entries))
        assert "s4" not in [c.record_id for c in found.candidates]
        assert pool.clk_catalog_size() == len(entries) - 1
        pool.catalog_add_clk([entries[4]])  # restore for other tests

    def test_health_and_rejection(self, pool, catalog_entries):
        records, _ = catalog_entries
        health = pool.health()
        assert health["mode"] == "pool"
        assert health["candidate_mode"] == "clk"
        assert health["clk_catalog_size"] == len(sentinel_records())
        assert health["catalog_size"] == 0
        with pytest.raises(ValueError):
            pool.submit_match(records[0], k=2)


# ----------------------------------------------------------------------
# HTTP / JSONL transport
# ----------------------------------------------------------------------
def clk_request(record_id, clk, k=3):
    return {"op": "clk_match", "id": record_id,
            "clk": base64.b64encode(clk_to_bytes(clk)).decode(), "k": k}


class TestTransport:
    def make_server(self, bundle, entries):
        server = MatchServer(bundle, clk_index=ClkCandidateIndex(words=4),
                             clk_threshold=0.6, candidate_mode="clk")
        server.catalog_add_clk(entries)
        return server

    def test_jsonl_clk_match(self, bundle, catalog_entries):
        _, entries = catalog_entries
        server = self.make_server(bundle, entries)
        responses = list(serve_requests(
            server, [clk_request(rid, clk) for rid, clk in entries[:3]]))
        for (rid, _), response in zip(entries, responses):
            json.dumps(response)  # wire-serializable
            assert response["status"] == "ok"
            assert response["op"] == "clk_match"
            assert response["candidates"][0]["id"] == rid
            assert response["candidates"][0]["is_match"] is True

    def test_malformed_clk_is_protocol_error(self, bundle, catalog_entries):
        from repro.serve import ProtocolError

        _, entries = catalog_entries
        server = self.make_server(bundle, entries)
        with pytest.raises(ProtocolError):
            handle_request(server, {"op": "clk_match", "id": "q"})
        with pytest.raises(ValueError):
            handle_request(server, {"op": "clk_match", "id": "q",
                                    "clk": "!!!not-base64!!!"})

    def test_http_routes(self, bundle, catalog_entries):
        _, entries = catalog_entries
        server = self.make_server(bundle, entries[:3])
        try:
            wrapper = MatchHTTPServer(server, port=0)
        except OSError as error:  # pragma: no cover - sandboxed CI
            pytest.skip(f"cannot bind a local socket: {error}")
        with wrapper:
            status, body = self._post(wrapper, "/clk/match",
                                      clk_request(*entries[0]))
            assert status == 200 and body["candidates"][0]["id"] == "s0"
            status, body = self._post(wrapper, "/admin/clk-catalog", {
                "add": [{"id": rid,
                         "clk": base64.b64encode(
                             clk_to_bytes(clk)).decode()}
                        for rid, clk in entries[3:]],
                "remove": ["s0"]})
            assert status == 200
            assert body["added"] == len(entries) - 3
            assert body["removed"] == 1
            assert body["size"] == len(entries) - 1
            with urllib.request.urlopen(wrapper.address + "/healthz",
                                        timeout=10) as reply:
                health = json.loads(reply.read())
            assert health["candidate_mode"] == "clk"
            assert health["clk_catalog_size"] == len(entries) - 1

    def _post(self, http, path, payload):
        request = urllib.request.Request(
            http.address + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


# ----------------------------------------------------------------------
# ACCEPTANCE: no plaintext on any frontend or replica pipe in CLK mode
# ----------------------------------------------------------------------
@needs_fork
class TestNoPlaintextOnWire:
    def test_pipes_and_frontend_carry_filters_only(self, bundle,
                                                   catalog_entries,
                                                   monkeypatch):
        records, entries = catalog_entries
        payloads = []

        # replica pipes, both directions: every router->replica send and
        # every replica->router receipt is recorded before delivery
        original_send = _Replica.send

        def recording_send(self, message):
            payloads.append(repr(message))
            original_send(self, message)

        monkeypatch.setattr(_Replica, "send", recording_send)

        pool = make_pool(bundle)
        original_handle = pool._handle_message
        pool._handle_message = lambda replica, message: (
            payloads.append(repr(message)), original_handle(replica,
                                                            message))
        with pool:
            pool.catalog_add_clk(entries)
            # the spawn-time journal a respawned replica would rebuild
            # from: CLK shards only, and the plaintext journal is empty
            payloads.append(repr(pool._clk_catalog))
            assert all(not shard for shard in pool._catalog)
            for rid, clk in entries:
                response = pool.clk_match(rid, clk, k=3)
                assert response.best.record_id == rid  # real traffic
            pool.catalog_remove(["s5"])

            # frontend: the HTTP/JSONL bodies are these dicts, serialized
            request = clk_request("s1", entries[1][1])
            payloads.append(json.dumps(request))
            payloads.append(json.dumps(handle_request(pool, request)))
            payloads.append(json.dumps(pool.health()))

        assert len(payloads) > 10
        assert_no_plaintext(payloads, records)

    def test_sentinels_would_be_caught(self, catalog_entries):
        # the leak check itself must be live: a payload that DOES carry a
        # record value must fail it
        records, _ = catalog_entries
        leaky = [repr(("score", 1, records[0], None))]
        with pytest.raises(AssertionError):
            assert_no_plaintext(leaky, records)
