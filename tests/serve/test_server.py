"""MatchServer: micro-batch formation, bit-identity, backpressure."""

import numpy as np
import pytest

from repro.data.dataset import CandidatePair
from repro.infer import EngineConfig, InferenceEngine
from repro.serve import MatchServer, Overloaded, ServerConfig, ServingIndex


def offline_engine(config: ServerConfig) -> InferenceEngine:
    return InferenceEngine(EngineConfig(
        token_budget=config.token_budget,
        max_batch_pairs=config.max_batch_pairs,
        cache_capacity=config.cache_capacity))


class TestConfig:
    def test_invalid_knobs_rejected(self):
        for kwargs in ({"max_queue": 0}, {"max_batch_pairs": 0},
                       {"token_budget": 0}, {"max_wait_s": -1}):
            with pytest.raises(ValueError):
                ServerConfig(**kwargs)


class TestSynchronousDriver:
    def test_score_batch_bit_identical_to_offline_replay(self, bundle, pairs):
        """Served probabilities must equal an offline engine replaying the
        same micro-batches -- the acceptance contract of the subsystem."""
        config = ServerConfig(max_batch_pairs=4, token_budget=512,
                              record_batches=True)
        server = MatchServer(bundle, config)
        pairs = list(pairs)
        responses = server.score_batch(pairs)
        assert len(responses) == len(pairs)
        assert server.batch_log, "record_batches must keep the batch log"

        position = {id(pair): i for i, pair in enumerate(pairs)}
        engine = offline_engine(config)
        replayed_rows = 0
        for entry in server.batch_log:
            replayed = engine.predict_proba(bundle.model, entry["pairs"])
            for row, pair in enumerate(entry["pairs"]):
                response = responses[position[id(pair)]]
                assert np.array_equal(response.probs, replayed[row])
                replayed_rows += 1
        assert replayed_rows == len(pairs)

    def test_predictions_use_bundle_threshold(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=8))
        responses = server.score_batch(list(pairs))
        for response in responses:
            expected = int(response.probs[1] > bundle.threshold)
            assert response.prediction == expected
            assert response.model_version == 1
            assert response.bundle_name == "tiny"

    def test_single_score_roundtrip(self, bundle, pairs):
        server = MatchServer(bundle)
        response = server.score(pairs[0])
        assert response.batch_size == 1
        assert 0.0 <= response.match_probability <= 1.0

    def test_max_batch_pairs_respected(self, bundle, pairs):
        config = ServerConfig(max_batch_pairs=3, token_budget=10_000)
        server = MatchServer(bundle, config)
        responses = server.score_batch(list(pairs))
        assert max(r.batch_size for r in responses) <= 3

    def test_token_budget_splits_batches(self, bundle, pairs):
        """A budget below rows x longest-encoding forces multi-batch."""
        config = ServerConfig(max_batch_pairs=32, token_budget=200)
        server = MatchServer(bundle, config)
        responses = server.score_batch(list(pairs))
        assert len({r.batch_id for r in responses}) > 1

    def test_stats_counts(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4))
        server.score_batch(list(pairs))
        stats = server.stats()
        assert stats["requests"] == len(pairs)
        assert stats["responses"] == len(pairs)
        assert stats["queue_depth"] == 0
        assert stats["shed"] == 0
        assert stats["model_version"] == 1
        assert stats["batches"] >= 1


class TestBackpressure:
    def test_overloaded_when_queue_full(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_queue=2))
        server.submit(pairs[0])
        server.submit(pairs[1])
        with pytest.raises(Overloaded) as excinfo:
            server.submit(pairs[2])
        assert excinfo.value.queue_depth == 2
        assert server.shed_count == 1
        # draining makes room again
        while server.process_once():
            pass
        server.submit(pairs[2])

    def test_group_admission_all_or_nothing(self, bundle, pairs, dataset):
        """A match query only enters the queue if all its candidate pairs
        fit; a partial group would deadlock the aggregate future."""
        index = ServingIndex()
        index.add_many(dataset.right_table)
        server = MatchServer(bundle, ServerConfig(max_queue=2), index=index)
        record = dataset.left_table.records[0]
        k = len(index.candidates(record, k=5))
        if k <= 2:
            pytest.skip("need >2 candidates to exercise group shedding")
        with pytest.raises(Overloaded):
            server.submit_match(record, k=k)
        assert server.stats()["queue_depth"] == 0

    def test_stopped_server_sheds(self, bundle, pairs):
        server = MatchServer(bundle)
        server.start()
        server.stop()
        with pytest.raises(Overloaded):
            server.submit(pairs[0])


class TestMatchQueries:
    def test_match_ranks_candidates(self, bundle, dataset):
        index = ServingIndex()
        index.add_many(dataset.right_table)
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=8),
                             index=index)
        record = dataset.left_table.records[0]
        response = server.match(record, k=4)
        assert response.record_id == record.record_id
        assert response.candidates
        probs = [c.probability for c in response.candidates]
        assert probs == sorted(probs, reverse=True)
        assert response.best is response.candidates[0]
        for candidate in response.matches():
            assert candidate.is_match

    def test_match_without_candidates_resolves_empty(self, bundle):
        from repro.data.records import EntityRecord

        server = MatchServer(bundle)
        response = server.match(
            EntityRecord.text_record("q", "zzqx wvut nothing"))
        assert response.candidates == [] and response.best is None


class TestThreadedMode:
    def test_threaded_scoring_matches_sync(self, bundle, pairs):
        config = ServerConfig(max_batch_pairs=4, token_budget=512)
        sync_server = MatchServer(bundle, config)
        expected = [r.probs for r in sync_server.score_batch(list(pairs))]

        with MatchServer(bundle, config) as server:
            pendings = [server.submit(pair) for pair in pairs]
            got = [p.result(timeout=30.0).probs for p in pendings]
        # batch composition may differ under the scheduler's timing, so
        # compare numerically rather than bitwise here (bitwise identity
        # per identical batch is pinned above and in the benchmark)
        assert np.allclose(np.array(got), np.array(expected), atol=1e-5)

    def test_stop_drains_queue(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4))
        server.start()
        pendings = [server.submit(pair) for pair in pairs]
        server.stop(drain=True)
        for pending in pendings:
            assert pending.result(timeout=1.0) is not None

    def test_stop_without_drain_fails_pending(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_wait_s=5.0))
        # not started: queue requests, then stop without draining
        pending = server.submit(pairs[0])
        server.stop(drain=False)
        with pytest.raises(Overloaded):
            pending.result(timeout=1.0)


class TestFailureContainment:
    """One bad request or batch must never take the scheduler down with it
    (REVIEW: a raising process_once used to kill the daemon thread)."""

    def test_scheduler_survives_batch_error(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_wait_s=0.0))
        real = server.engine.predict_proba
        armed = {"boom": True}

        def flaky(model, batch):
            if armed["boom"]:
                armed["boom"] = False
                raise RuntimeError("scoring exploded")
            return real(model, batch)

        server.engine.predict_proba = flaky
        with server:
            bad = server.submit(pairs[0])
            with pytest.raises(RuntimeError):
                bad.result(timeout=10.0)
            # the scheduler thread must still be alive and serving
            good = server.submit(pairs[1])
            assert good.result(timeout=10.0).probs.shape == (2,)
        assert server.error_count >= 1
        assert server.stats()["errors"] >= 1

    def test_unencodable_request_fails_individually(self, bundle, pairs):
        from repro.data.records import EntityRecord

        server = MatchServer(bundle)
        real = server.engine.encodings

        def picky(model, batch):
            if any(p.left.record_id == "poison" for p in batch):
                raise ValueError("cannot encode")
            return real(model, batch)

        server.engine.encodings = picky
        poison = CandidatePair(EntityRecord.text_record("poison", "boom"),
                               pairs[0].right)
        bad = server.submit(poison)
        good = server.submit(pairs[0])
        while not good.done():
            server.process_once()
        with pytest.raises(ValueError):
            bad.result(timeout=0)
        assert good.result(timeout=0).prediction in (0, 1)
        assert server.error_count == 1

    def test_stop_drain_survives_batch_error(self, bundle, pairs):
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=1))
        real = server.engine.predict_proba
        armed = {"boom": True}

        def flaky(model, batch):
            if armed["boom"]:
                armed["boom"] = False
                raise RuntimeError("scoring exploded")
            return real(model, batch)

        server.engine.predict_proba = flaky
        bad = server.submit(pairs[0])
        good = server.submit(pairs[1])
        server.stop(drain=True)
        with pytest.raises(RuntimeError):
            bad.result(timeout=0)
        assert good.result(timeout=0).probs.shape == (2,)


    def test_stop_drain_survives_persistent_pre_batch_failure(
            self, bundle, pairs):
        # a failure that precedes batch formation (e.g. a replica's
        # snapshot/adopt raising) makes no progress on the queue;
        # stop(drain=True) used to spin on it forever at 100% CPU
        server = MatchServer(bundle, ServerConfig(max_batch_pairs=4))
        pending = server.submit(pairs[0])

        def broken_snapshot():
            raise RuntimeError("adopt failed")

        server._snapshot = broken_snapshot
        server.stop(drain=True)  # must return, failing the queue
        with pytest.raises(RuntimeError, match="adopt failed"):
            pending.result(timeout=1.0)
        assert server.error_count >= 1


class TestContentAddressedCache:
    """Replacing a record under an existing id must never be served a
    stale cached encoding (REVIEW: keys used to be id-only)."""

    def test_replaced_record_same_id_not_served_stale(self, bundle, dataset):
        from repro.data.records import EntityRecord

        left = dataset.left_table.records[0]
        right_a = dataset.right_table.records[0]
        donor = dataset.right_table.records[1]
        right_b = EntityRecord(record_id=right_a.record_id,
                               kind=right_a.kind,
                               values=dict(donor.values))

        server = MatchServer(bundle)
        server.score(CandidatePair(left, right_a))  # warms the cache
        served = server.score(CandidatePair(left, right_b))
        fresh = MatchServer(bundle).score(CandidatePair(left, right_b))
        assert np.array_equal(served.probs, fresh.probs)
