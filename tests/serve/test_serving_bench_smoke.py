"""Tier-1 smoke pass over the serving benchmark logic.

Runs :func:`benchmarks.bench_serving.run_serving_comparison` on the tiny
cached backbone and checks its structural outputs -- all three arms
produce throughput numbers, the served probabilities are bit-identical to the
offline replay of the logged micro-batches -- WITHOUT asserting anything
about wall-clock speed, so the test is stable on loaded CI machines. The
real 1-by-1 vs micro-batched timing comparison lives in
``benchmarks/bench_serving.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_serving import run_serving_comparison  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.serve import ModelBundle  # noqa: E402

from .conftest import make_model  # noqa: E402


@pytest.mark.smoke
def test_serving_benchmark_smoke(backbone):
    bundle = ModelBundle.from_model(make_model(backbone, max_len=64),
                                    threshold=0.5, name="tiny")
    pairs = load_dataset("REL-HETER").test[:10]

    result = run_serving_comparison(bundle, pairs, iterations=1,
                                    max_batch_pairs=8, token_budget=1024)
    assert result["pairs"] == 10 and result["iterations"] == 1
    assert result["naive_pps"] > 0 and result["single_pps"] > 0
    assert result["batched_pps"] > 0
    assert result["speedup"] > 0 and result["speedup_vs_single"] > 0
    assert result["batches"] >= 1
    assert result["mean_batch_size"] > 1.0  # micro-batching actually batches
    assert result["shed"] == 0
    assert result["p95_latency_ms"] >= result["p50_latency_ms"] >= 0.0
    # the serving-identity contract, at smoke scale
    assert result["bit_identical"] is True
    assert result["max_abs_diff"] < 1e-6
