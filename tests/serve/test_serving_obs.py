"""Serving observability end to end: stitched cross-process request
traces, pool-wide metrics aggregation, SLO/drift surfaces over HTTP, and
the determinism contract (telemetry on vs off is bit-identical)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data.io import _record_to_dict
from repro.obs import TRACE_STAGES, read_events, telemetry_session
from repro.obs.serving import DriftConfig, DriftMonitor
from repro.parallel.pool import force_serial, fork_available
from repro.serve import (
    MatchHTTPServer, MatchServer, ModelBundle, PoolConfig, ServerConfig,
    ServingPool,
)

from .test_tenants import fresh_model, make_delta  # noqa: F401 (fixture dep)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


@pytest.fixture(scope="module")
def obs_tenants_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_tenants")
    make_delta("soft_prompt", 11, "ta").save(root / "ta")
    make_delta("soft_prompt", 12, "tb").save(root / "tb")
    return root


@needs_fork
class TestPoolTracing:
    def test_stitched_trees_across_replicas_and_tenants(
            self, obs_tenants_dir, pairs, tmp_path):
        bundle = ModelBundle.from_model(fresh_model(), threshold=0.5,
                                        name="traced")
        log = tmp_path / "serve.jsonl"
        with telemetry_session(path=log, trace=True):
            pool = ServingPool(bundle, PoolConfig(
                replicas=2, tenants_dir=str(obs_tenants_dir)))
            with pool:
                batch = list(pairs) * 2
                tenants = [("ta", "tb")[i % 2] for i in range(len(batch))]
                responses = pool.score_batch(batch, timeout=60.0,
                                             tenants=tenants)
        for response, tenant in zip(responses, tenants):
            tree = response.trace
            assert tree is not None
            assert tuple(s["name"] for s in tree["spans"]) == TRACE_STAGES
            # span attribution: the tree names the replica that actually
            # scored the request, and the stage walls account for the
            # whole observed latency (respond absorbs the remainder)
            assert tree["replica"] == response.replica
            assert tree["tenant"] == tenant
            assert sum(s["wall"] for s in tree["spans"]) == \
                pytest.approx(tree["wall"], abs=1e-6)
            assert all(s["wall"] >= 0.0 for s in tree["spans"])
            assert tree["batch_size"] == response.batch_size
        agg = pool.request_tracer.aggregate()
        assert agg["requests"] == len(responses)
        assert set(agg["by_tenant"]) == {"ta", "tb"}
        assert set(agg["by_replica"]) == {"0", "1"}  # both replicas used
        # every stitched tree also landed in the run log
        events = read_events(log, kind="serve.trace")
        ids = [event["request_id"] for event in events]
        assert sorted(ids) == sorted(r.trace["request_id"]
                                     for r in responses)
        assert len(set(ids)) == len(ids)

    def test_traces_absent_without_trace_flag(self, bundle, pairs):
        with telemetry_session():  # metrics only, no --trace
            pool = ServingPool(bundle, PoolConfig(replicas=1))
            with pool:
                response = pool.score(pairs[0], timeout=60.0)
        assert response.trace is None


@needs_fork
class TestPoolMetricsAggregation:
    def test_merged_totals_equal_sum_of_replica_registries(self, bundle,
                                                           pairs):
        with telemetry_session():
            pool = ServingPool(bundle, PoolConfig(replicas=2))
            with pool:
                pool.score_batch(list(pairs) * 2, timeout=60.0)
                view = pool.metrics_snapshot()  # pull: right-now counts
                sources = view["sources"]
                assert "router" in sources
                replica_labels = [label for label in sources
                                  if label.startswith("replica")]
                assert len(replica_labels) == 2
                total = sum(
                    sources[label].get("serve.requests", {}).get("value", 0)
                    for label in sources)
                assert view["merged"]["serve.requests"]["value"] == total
                assert total >= len(pairs) * 2
                json.dumps(view)  # plain JSON all the way down

    def test_stop_ack_harvests_final_snapshots(self, bundle, pairs):
        with telemetry_session():
            pool = ServingPool(bundle, PoolConfig(replicas=2))
            with pool:
                pool.score_batch(list(pairs[:4]), timeout=60.0)
            # pool stopped: the cached stop-ack snapshots still merge
            view = pool.metrics_snapshot(pull=False)
            assert any(label.startswith("replica")
                       for label in view["sources"])
            assert view["merged"]["serve.responses"]["value"] >= 4

    def test_disabled_telemetry_keeps_metrics_empty(self, bundle, pairs):
        pool = ServingPool(bundle, PoolConfig(replicas=1))
        with pool:
            pool.score(pairs[0], timeout=60.0)
            view = pool.metrics_snapshot()
        assert view["merged"] == {}


class TestObservabilityRoutes:
    """/healthz stays open (LB probes), /slo and /metrics are gated like
    /admin/* -- exercised against a pool-mode server."""

    @pytest.fixture()
    def http(self, bundle, dataset):
        with force_serial():
            pool = ServingPool(bundle, PoolConfig(replicas=2, shards=2))
            pool.catalog_add(list(dataset.right_table))
            with pool:
                try:
                    wrapper = MatchHTTPServer(pool, port=0,
                                              admin_token="sekrit")
                except OSError as error:  # pragma: no cover - sandboxed CI
                    pytest.skip(f"cannot bind a local socket: {error}")
                with wrapper:
                    yield wrapper

    def get(self, http, path, token=None):
        headers = {} if token is None else {"X-Admin-Token": token}
        request = urllib.request.Request(http.address + path,
                                         headers=headers)
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())

    def test_healthz_is_ungated_and_enriched(self, http):
        status, body = self.get(http, "/healthz")  # no token on purpose
        assert status == 200 and body["status"] == "ok"
        assert body["mode"] == "serial"  # pool surface, forced serial
        assert body["bundle"] == "tiny"
        assert body["catalog_size"] > 0
        assert body["replicas"]["configured"] == 2
        assert "queue_depth" in body

    def test_slo_route_gated_and_shaped(self, http, pairs):
        with pytest.raises(urllib.error.HTTPError) as denied:
            self.get(http, "/slo")
        assert denied.value.code == 403
        payload = json.dumps({
            "left": _record_to_dict(pairs[0].left),
            "right": _record_to_dict(pairs[0].right)}).encode()
        request = urllib.request.Request(
            http.address + "/score", data=payload,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as reply:
            assert reply.status == 200
        status, body = self.get(http, "/slo", token="sekrit")
        assert status == 200 and body["status"] == "ok"
        objectives = body["slo"]["objectives"]
        assert objectives["latency_quantile"] == 0.95
        base = body["slo"]["tenants"]["_base"]
        assert base["requests"] >= 1 and base["ok"] in (True, False)
        assert "drift" in body

    def test_metrics_route_reports_pool_view(self, http):
        with pytest.raises(urllib.error.HTTPError) as denied:
            self.get(http, "/metrics")
        assert denied.value.code == 403
        status, body = self.get(http, "/metrics", token="sekrit")
        assert status == 200 and body["status"] == "ok"
        assert body["enabled"] is False  # no telemetry session here
        assert "sources" in body and "router" in body["sources"]


class TestDriftIntegration:
    def test_stationary_replay_quiet_then_injected_shift_trips(
            self, bundle, pairs, tmp_path):
        drift = DriftMonitor(DriftConfig(reference_size=8, window=8))
        server = MatchServer(bundle, ServerConfig(), drift=drift)
        log = tmp_path / "drift.jsonl"
        with telemetry_session(path=log) as tel:
            # replaying the same pairs bootstraps the reference from the
            # first window and then compares like against like: quiet
            for _ in range(4):
                for pair in pairs[:4]:
                    server.score(pair)
            assert not drift.active
            assert tel.metrics.gauge("serve.drift.active").value == 0.0
            # inject a shift: swap in a reference spread uniformly over
            # all score buckets -- live traffic concentrates in a few, so
            # PSI must trip within one rolling window (8 observations)
            version = f"{bundle.name}@{server.version}"
            drift.set_reference(None, [b / 10 + 0.05 for b in range(10)],
                                version=version)
            for pair in pairs[:8]:
                server.score(pair)
            assert drift.active
            assert tel.metrics.gauge("serve.drift.active").value == 1.0
            assert tel.metrics.counter("serve.drift.events").value >= 1
        events = read_events(log, kind="serve.drift")
        assert events
        assert events[0]["tenant"] == "_base"
        assert events[0]["drift_kind"] == "psi"
        assert events[0]["psi"] > events[0]["psi_threshold"]


class TestDeterminism:
    def test_outputs_bit_identical_telemetry_on_vs_off(self, bundle, pairs,
                                                       tmp_path):
        # no session: the strict no-op fast path
        plain = MatchServer(bundle, ServerConfig())
        baseline = [plain.score(pair) for pair in pairs[:6]]
        assert all(response.trace is None for response in baseline)
        with telemetry_session(path=tmp_path / "on.jsonl", trace=True):
            traced_server = MatchServer(bundle, ServerConfig())
            traced = [traced_server.score(pair) for pair in pairs[:6]]
        for got, want in zip(traced, baseline):
            # scored output is bit-identical; the trace tree is
            # observability metadata, never part of the scored output
            assert np.array_equal(got.probs, want.probs)
            assert got.prediction == want.prediction
            assert got.model_version == want.model_version
            assert got.trace is not None
            assert got.trace["spans"][0]["name"] == "admission"

    def test_slo_accounting_is_always_on_and_output_neutral(self, bundle,
                                                            pairs):
        server = MatchServer(bundle, ServerConfig())
        server.score(pairs[0])
        snap = server.slo_snapshot()
        assert snap["slo"]["tenants"]["_base"]["requests"] == 1
        assert snap["drift"]["tenants"]["_base"]["reference_size"] == 1
