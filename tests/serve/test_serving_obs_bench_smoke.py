"""Tier-1 smoke pass over the serving-observability benchmark logic.

Runs :func:`benchmarks.bench_serving_obs.run_obs_overhead` on the tiny
cached backbone and checks its structural outputs -- all three telemetry
arms report throughput, the full arm actually traced every request, and
the served probabilities are bit-identical across arms -- WITHOUT
asserting anything about wall-clock overhead, so the test is stable on
loaded CI machines. The real overhead measurement lives in
``benchmarks/bench_serving_obs.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from bench_serving_obs import ARMS, run_obs_overhead  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.serve import ModelBundle  # noqa: E402

from .conftest import make_model  # noqa: E402


@pytest.mark.smoke
def test_serving_obs_benchmark_smoke(backbone):
    bundle = ModelBundle.from_model(make_model(backbone, max_len=64),
                                    threshold=0.5, name="tiny")
    pairs = load_dataset("REL-HETER").test[:8]

    result = run_obs_overhead(bundle, pairs, iterations=2,
                              max_batch_pairs=8, token_budget=1024)
    assert result["pairs"] == 8 and result["iterations"] == 2
    assert set(result["arms"]) == set(ARMS)
    for arm in ARMS:
        stats = result["arms"][arm]
        assert stats["requests"] == 16
        assert stats["requests_per_sec"] > 0
    # overhead is reported for the enabled arms only (no speed assertion)
    assert "overhead_pct" not in result["arms"]["disabled"]
    assert "overhead_pct" in result["arms"]["full"]
    # the full arm traced the timed sweeps and flushed them to the log
    assert result["traced_requests"] >= 16
    assert result["runlog_records"] >= result["traced_requests"]
    # the headline contract: telemetry never changes a served byte
    assert result["bit_identical"] is True
    assert result["budget_pct"] == 2.0
