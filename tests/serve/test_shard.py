"""Sharded candidate parity: ShardedServingIndex / ShardedDenseCandidateIndex
must return exactly the unsharded top-k at every shard count, including
after add/remove/replace churn -- the property the pool's scatter/gather
correctness rests on."""

import pytest

from repro.ann import RecordEncoder
from repro.data.records import EntityRecord
from repro.serve import ServingIndex
from repro.serve.dense import DenseCandidateIndex
from repro.serve.shard import (
    ShardedDenseCandidateIndex, ShardedServingIndex, merge_topk, shard_of,
)

SHARD_COUNTS = (1, 2, 4)


def rec(rid, text):
    return EntityRecord.text_record(rid, text)


@pytest.fixture(scope="module")
def records(dataset):
    return list(dataset.left_table) + list(dataset.right_table)


@pytest.fixture(scope="module")
def queries(dataset):
    return [pair.left for pair in dataset.test[:6]]


def ranking(index, query, k):
    return [(record.record_id, score)
            for record, score in index.candidates(query, k)]


class TestShardOf:
    def test_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for i in range(50):
                shard = shard_of(f"r{i}", shards)
                assert 0 <= shard < shards
                assert shard == shard_of(f"r{i}", shards)  # deterministic

    def test_spreads_ids(self):
        owners = {shard_of(f"r{i}", 4) for i in range(100)}
        assert owners == {0, 1, 2, 3}

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestMergeTopk:
    def test_orders_by_score_then_id(self):
        a = [(rec("b", "x"), 0.9), (rec("d", "x"), 0.5)]
        b = [(rec("a", "x"), 0.9), (rec("c", "x"), 0.7)]
        merged = merge_topk([a, b], 3)
        assert [r.record_id for r, _ in merged] == ["a", "b", "c"]

    def test_truncates_to_k(self):
        partial = [(rec(f"r{i}", "x"), 1.0 - i / 10) for i in range(5)]
        assert len(merge_topk([partial], 2)) == 2

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            merge_topk([], 0)


class TestSparseParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_topk_identical_to_unsharded(self, records, queries, shards):
        flat = ServingIndex(default_k=5)
        flat.add_many(records)
        sharded = ShardedServingIndex(shards, default_k=5)
        assert sharded.add_many(records) == len({r.record_id
                                                 for r in records})
        assert len(sharded) == len(flat)
        for query in queries:
            for k in (1, 3, 8):
                assert ranking(sharded, query, k) == ranking(flat, query, k)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_parity_survives_churn(self, records, queries, shards):
        flat = ServingIndex(default_k=5)
        sharded = ShardedServingIndex(shards, default_k=5)
        flat.add_many(records)
        sharded.add_many(records)
        # remove every third record, replace every fifth with new values
        for i, record in enumerate(records):
            if i % 3 == 0:
                assert flat.remove(record.record_id) == \
                    sharded.remove(record.record_id)
            elif i % 5 == 0:
                replacement = rec(record.record_id,
                                  f"replacement tokens {i} shared value")
                flat.add(replacement)
                sharded.add(replacement)
        sharded.add(rec("brand-new", "mexican blue habor"))
        flat.add(rec("brand-new", "mexican blue habor"))
        for query in queries:
            assert ranking(sharded, query, 6) == ranking(flat, query, 6)

    def test_catalog_protocol(self, records):
        sharded = ShardedServingIndex(3)
        sharded.add_many(records[:10])
        sample = records[0]
        assert sample.record_id in sharded
        assert sharded.get(sample.record_id) is sample
        assert sharded.get("missing") is None
        assert "missing" not in sharded
        stats = sharded.stats()
        assert stats["shards"] == 3
        assert stats["records"] == len(sharded)
        assert len(stats["per_shard"]) == 3
        assert sum(s["records"] for s in stats["per_shard"]) == len(sharded)


@pytest.fixture(scope="module")
def encoder(backbone):
    lm, tok = backbone
    return RecordEncoder(lm=lm, tokenizer=tok, max_len=32)


def assert_dense_ranking_matches(sharded, flat, query, k):
    """Same ranked ids; scores equal to float32 reduction tolerance.

    Dense scores go through one BLAS gemv per shard
    (``repro.ann.kernels.fused_scaled_dot``) and gemv accumulation order
    depends on the matrix row count, so per-shard scores can differ from
    the unsharded ones in the last ulp (~1e-7).  The codes and scales are
    per-vector and shard-independent -- only the float32 summation order
    is not -- so the *ranking* must still agree.
    """
    got = ranking(sharded, query, k)
    want = ranking(flat, query, k)
    assert [rid for rid, _ in got] == [rid for rid, _ in want]
    for (_, mine), (_, theirs) in zip(got, want):
        assert mine == pytest.approx(theirs, rel=1e-5, abs=1e-6)


class TestDenseParity:
    """LSH shards share seeded hyperplanes and untrained IVF is a flat
    scan, so both partition exactly by record id; scores are compared to
    float32 tolerance (see assert_dense_ranking_matches) and the
    trained-IVF probe caveat is documented in repro/serve/shard.py."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("kind", ["ivf", "lsh"])
    def test_topk_identical_to_unsharded(self, encoder, records, queries,
                                         kind, shards):
        subset = records[:24]
        flat = DenseCandidateIndex(encoder, kind=kind, default_k=4, seed=3)
        flat.add_many(subset)
        sharded = ShardedDenseCandidateIndex(encoder, shards, kind=kind,
                                             default_k=4, seed=3)
        sharded.add_many(subset)
        assert len(sharded) == len(flat)
        for query in queries[:3]:
            for k in (1, 4):
                assert_dense_ranking_matches(sharded, flat, query, k)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_parity_survives_churn(self, encoder, records, queries, shards):
        subset = records[:18]
        flat = DenseCandidateIndex(encoder, kind="lsh", default_k=4, seed=7)
        sharded = ShardedDenseCandidateIndex(encoder, shards, kind="lsh",
                                             default_k=4, seed=7)
        flat.add_many(subset)
        sharded.add_many(subset)
        for i, record in enumerate(subset):
            if i % 4 == 0:
                assert flat.remove(record.record_id) == \
                    sharded.remove(record.record_id)
            elif i % 5 == 0:
                replacement = rec(record.record_id, f"fresh text {i}")
                flat.add(replacement)
                sharded.add(replacement)
        for query in queries[:3]:
            assert_dense_ranking_matches(sharded, flat, query, 5)

    def test_query_embedded_once(self, encoder, records, queries):
        """candidates() routes through one encoder call + the vector
        scatter path (the pool depends on candidates_from_vector)."""
        sharded = ShardedDenseCandidateIndex(encoder, 2, kind="lsh",
                                             default_k=3, seed=1)
        sharded.add_many(records[:12])
        query = queries[0]
        vector = encoder.encode_record(query)
        direct = sharded.candidates_from_vector(vector, 3)
        assert ranking(sharded, query, 3) == [(r.record_id, s)
                                              for r, s in direct]
