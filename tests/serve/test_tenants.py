"""TenantRegistry and multi-tenant MatchServer/ServingPool: LRU
hot-loading, fingerprint pins, bind/fuse bit-identity, and the shared
encoding-cache regression (a cache hit across a tenant switch must never
leak another tenant's probabilities)."""

import json

import numpy as np
import pytest

from repro.core import apply_peft
from repro.infer import InferenceEngine
from repro.lm import load_pretrained
from repro.obs import telemetry_session
from repro.parallel.pool import force_serial, fork_available
from repro.serve import (
    DeltaBundle, MatchServer, ModelBundle, PoolConfig, ServerConfig,
    ServingPool, TenantError, TenantRegistry, UnknownTenant,
)

from .conftest import make_model

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


def fresh_model():
    # fresh weights per model (disk-cache load), identical bytes -> every
    # model here shares one backbone fingerprint
    return make_model(load_pretrained("minilm-tiny"))


def make_delta(kind, seed, name, threshold=None):
    model = fresh_model()
    apply_peft(model, kind, bottleneck=4, seed=seed)
    rng = np.random.default_rng(seed)
    for _, param in model.named_trainable_parameters():
        param.data[...] += (0.05 * rng.standard_normal(param.data.shape)
                            ).astype(param.data.dtype)
    return DeltaBundle.from_model(model, name=name, threshold=threshold)


@pytest.fixture(scope="module")
def tenants_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("tenants")
    # extreme thresholds make per-tenant decisions observable: t0 can
    # never predict match, t1 always does
    make_delta("soft_prompt", 1, "t0", threshold=2.0).save(root / "t0")
    make_delta("soft_prompt", 2, "t1", threshold=-1.0).save(root / "t1")
    make_delta("soft_prompt", 3, "t2").save(root / "t2")
    make_delta("adapter", 4, "ad", threshold=0.5).save(root / "ad")
    return root


def attached_registry(tenants_dir, capacity=8):
    registry = TenantRegistry(capacity=capacity, tenants_dir=tenants_dir)
    registry.attach(fresh_model())
    return registry


def offline_probs(tenants_dir, tenant, pairs):
    """Ground truth: a fresh model with exactly this tenant bound."""
    registry = attached_registry(tenants_dir)
    registry.bind(tenant)
    return InferenceEngine().predict_proba(registry.model, list(pairs))


class TestRegistry:
    def test_load_dir_registers_lazily(self, tenants_dir):
        registry = TenantRegistry(tenants_dir=tenants_dir)
        assert registry.tenants() == ["ad", "t0", "t1", "t2"]
        assert registry.has("t0") and registry.has(None)
        assert not registry.has("ghost")
        stats = registry.stats()
        assert stats["registered"] == 4
        assert stats["loaded"] == 0  # registration never reads delta.npz

    def test_unknown_tenant(self, tenants_dir):
        registry = attached_registry(tenants_dir)
        with pytest.raises(UnknownTenant):
            registry.entry("ghost")

    def test_lru_eviction_reloads_from_disk(self, tenants_dir):
        registry = attached_registry(tenants_dir, capacity=2)
        with telemetry_session() as tel:
            first = registry.entry("t0")
            registry.entry("t1")
            registry.entry("t2")  # capacity 2: evicts t0
            assert tel.metrics.counter("tenant.loads").value == 3
            assert tel.metrics.counter("tenant.evictions").value == 1
            assert registry.stats()["loaded"] == 2
            again = registry.entry("t0")  # registered path survived
            assert tel.metrics.counter("tenant.loads").value == 4
        assert again is not first
        assert np.array_equal(again.soft_prompt.embeddings.data,
                              first.soft_prompt.embeddings.data)

    def test_bound_tenant_never_evicted(self, tenants_dir):
        registry = attached_registry(tenants_dir, capacity=2)
        with telemetry_session() as tel:
            registry.bind("t0")
            registry.entry("t1")
            registry.entry("t2")  # evicts t1, not the bound t0
            assert registry.bound == "t0"
            registry.bind("t0")  # still resident: no reload
            assert tel.metrics.counter("tenant.loads").value == 3

    def test_fingerprint_pin_mismatch_refused(self, tenants_dir, tmp_path):
        delta_dir = make_delta("soft_prompt", 9, "alien").save(
            tmp_path / "alien")
        manifest_path = delta_dir / "bundle.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["backbone_fingerprint"] = "0" * 40
        manifest_path.write_text(json.dumps(manifest))

        registry = attached_registry(tenants_dir)
        registry.register("alien", delta_dir)
        with pytest.raises(TenantError, match="pinned"):
            registry.entry("alien")

    def test_threshold_for(self, tenants_dir):
        registry = attached_registry(tenants_dir)
        assert registry.threshold_for("t0", 0.5) == 2.0
        assert registry.threshold_for("t2", 0.5) == 0.5  # delta has none
        assert registry.threshold_for(None, 0.5) == 0.5


class TestBindIdentity:
    @pytest.mark.parametrize("tenant", ["t0", "ad"])
    def test_bind_then_unbind_is_bit_identical(self, tenants_dir, pairs,
                                               tenant):
        registry = attached_registry(tenants_dir)
        engine = InferenceEngine()
        base = engine.predict_proba(registry.model, list(pairs))

        registry.bind(tenant)
        bound = engine.predict_proba(registry.model, list(pairs))
        assert not np.array_equal(bound, base)  # the delta actually acts
        assert np.array_equal(bound,
                              offline_probs(tenants_dir, tenant, pairs))

        registry.bind(None)
        assert np.array_equal(
            engine.predict_proba(registry.model, list(pairs)), base)

    def test_fused_matches_serial_binds(self, tenants_dir, pairs):
        registry = attached_registry(tenants_dir)
        engine = InferenceEngine()
        batch = list(pairs)[:4]
        tenants = ["t0", "t1", None, "t2"]
        fused = registry.fused_probs(engine, batch, tenants)
        # fusion changes the batch composition, so rows agree with a
        # serial per-tenant bind to float32 accumulation order, while the
        # fused call itself is deterministic
        for row, tenant in enumerate(tenants):
            want = offline_probs(tenants_dir, tenant, [batch[row]])[0]
            np.testing.assert_allclose(fused[row], want,
                                       rtol=1e-5, atol=1e-6)
        again = registry.fused_probs(engine, batch, tenants)
        assert np.array_equal(fused, again)

    def test_fused_rejects_adapter_tenants(self, tenants_dir, pairs):
        registry = attached_registry(tenants_dir)
        assert not registry.fusable("ad")
        with pytest.raises(TenantError, match="fused"):
            registry.fused_probs(InferenceEngine(), list(pairs)[:2],
                                 ["ad", None])


def tenant_server(tenants_dir, **config_kwargs):
    config = ServerConfig(max_batch_pairs=4, token_budget=4096,
                          record_batches=True, **config_kwargs)
    bundle = ModelBundle.from_model(fresh_model(), threshold=0.5,
                                    name="tiny")
    registry = TenantRegistry(capacity=8, tenants_dir=tenants_dir)
    return MatchServer(bundle, config, tenants=registry)


class TestServerRouting:
    @pytest.mark.parametrize("fuse", [True, False])
    def test_mixed_stream_bit_identical_per_tenant(self, tenants_dir,
                                                   pairs, fuse):
        """Served probabilities equal an offline replay of the server's
        own micro-batches with each batch's tenant delta bound (or the
        same fused call for mixed batches) -- the acceptance contract."""
        server = tenant_server(tenants_dir, fuse_tenants=fuse)
        stream = [None, "t0", "t1", "ad"] * 3
        batch = list(pairs)[:len(stream)]
        responses = server.score_batch(batch, tenants=stream)
        for tenant, response in zip(stream, responses):
            assert response.tenant == tenant  # routing echoed back

        position = {id(pair): i for i, pair in enumerate(batch)}
        replay = attached_registry(tenants_dir)
        engine = InferenceEngine()
        replayed = 0
        assert server.batch_log
        for entry in server.batch_log:
            if len(set(entry["tenants"])) == 1:
                replay.bind(entry["tenants"][0])
                probs = engine.predict_proba(replay.model, entry["pairs"])
            else:
                assert fuse  # mixed batches only form when fusion is on
                probs = replay.fused_probs(engine, entry["pairs"],
                                           entry["tenants"])
            for row, pair in enumerate(entry["pairs"]):
                response = responses[position[id(pair)]]
                assert np.array_equal(response.probs, probs[row])
                replayed += 1
        assert replayed == len(batch)

    def test_unknown_tenant_rejected_at_admission(self, tenants_dir,
                                                  pairs):
        server = tenant_server(tenants_dir)
        with pytest.raises(UnknownTenant):
            server.submit(pairs[0], tenant="ghost")
        no_registry = MatchServer(
            ModelBundle.from_model(fresh_model(), threshold=0.5))
        with pytest.raises(UnknownTenant):
            no_registry.submit(pairs[0], tenant="t0")

    def test_adapter_tenants_batch_alone(self, tenants_dir, pairs):
        server = tenant_server(tenants_dir)
        stream = ["ad", "t0", "ad", "t1", "ad", None] * 2
        server.score_batch(list(pairs)[:len(stream)], tenants=stream)
        assert server.batch_log
        for entry in server.batch_log:
            seen = set(entry["tenants"])
            if "ad" in seen:
                assert seen == {"ad"}, entry["tenants"]

    def test_per_tenant_thresholds_decide(self, tenants_dir, pairs):
        server = tenant_server(tenants_dir)
        batch = list(pairs)[:4]
        never = server.score_batch(batch, tenants=["t0"] * 4)
        always = server.score_batch(batch, tenants=["t1"] * 4)
        assert [r.prediction for r in never] == [0] * 4   # threshold 2.0
        assert [r.prediction for r in always] == [1] * 4  # threshold -1.0

    def test_cache_hits_never_leak_across_tenants(self, tenants_dir,
                                                  pairs):
        """The encoding cache is shared (encodings are tenant-independent)
        but probabilities are tenant-specific: re-scoring a cached pair
        under another tenant must hit the cache AND produce that tenant's
        probabilities, not the cached tenant's."""
        server = tenant_server(tenants_dir)
        pair = pairs[0]
        r0 = server.score(pair, tenant="t0")
        hits_before = server.engine.cache.hits
        r1 = server.score(pair, tenant="t1")
        r_base = server.score(pair, tenant=None)
        assert server.engine.cache.hits >= hits_before + 2  # shared cache
        assert not np.array_equal(r1.probs, r0.probs)
        assert not np.array_equal(r_base.probs, r1.probs)
        for tenant, response in ((None, r_base), ("t0", r0), ("t1", r1)):
            want = offline_probs(tenants_dir, tenant, [pair])[0]
            assert np.array_equal(response.probs, want), tenant

    def test_stats_expose_tenants(self, tenants_dir, pairs):
        server = tenant_server(tenants_dir)
        server.score(pairs[0], tenant="t0")
        stats = server.stats()["tenants"]
        assert stats["registered"] == 4
        assert stats["loaded"] >= 1
        assert stats["capacity"] == 8


class TestReplicaAdoption:
    """A bound tenant delta must survive the replica's shared-store
    adoption cycle.

    Regression: a bound adapter tenant adds parameters to the backbone,
    and the store's fingerprint check used to refuse every subsequent
    batch-boundary snapshot -- poisoning the replica (requests after an
    adapter batch never resolved) and turning stop(drain=True) into a
    busy loop that outlived the pool."""

    def test_adapter_tenant_survives_snapshot_and_publish(
            self, tenants_dir, pairs):
        from repro.serve.pool import ReplicaMatchServer
        from repro.serve.weights import SharedBundleWeights

        bundle = ModelBundle.from_model(fresh_model(), threshold=0.5,
                                        name="tiny")
        store = SharedBundleWeights(bundle.model, replicas=1)
        store.publish(bundle.model, name="tiny", threshold=0.5)
        registry = TenantRegistry(capacity=4, tenants_dir=str(tenants_dir))
        server = ReplicaMatchServer(bundle, ServerConfig(), store, 0,
                                    tenants=registry)
        registry.bind("ad")  # adapters now installed on the shared model
        # steady state (no publish since adoption): the snapshot must
        # tolerate the adapter-augmented topology and keep the binding
        _, version = server._snapshot()
        assert version == 1
        assert registry.bound == "ad"
        # a publish re-points every parameter view: the replica unbinds
        # the tenant first, adopts the new version, and can then re-bind
        # the tenant and keep serving
        store.publish(fresh_model(), name="v2", threshold=0.25)
        snapshot, version = server._snapshot()
        assert version == 2
        assert snapshot.threshold == 0.25
        assert registry.bound is None
        registry.bind("ad")
        probs = server.engine.predict_proba(bundle.model, list(pairs)[:2])
        assert probs.shape == (2, 2)
        store.close()


class TestPoolRouting:
    def _check_pool(self, pool, tenants_dir, pairs):
        stream = [None, "t0", "t1", "ad"] * 2
        batch = list(pairs)[:len(stream)]
        with pool:
            responses = pool.score_batch(batch, tenants=stream,
                                         timeout=60.0)
            with pytest.raises(UnknownTenant):
                pool.submit(batch[0], tenant="ghost")
        by_tenant = {}
        for pair, tenant, response in zip(batch, stream, responses):
            assert response.tenant == tenant
            by_tenant.setdefault(tenant, []).append((pair, response))
        # replica batch compositions are not observable from the parent,
        # so the pool check is float32-tolerant; exact per-batch identity
        # is covered by the MatchServer replay test above
        for tenant, rows in by_tenant.items():
            want = offline_probs(tenants_dir, tenant,
                                 [pair for pair, _ in rows])
            for row, (_, response) in enumerate(rows):
                np.testing.assert_allclose(response.probs, want[row],
                                           rtol=1e-5, atol=1e-6,
                                           err_msg=str(tenant))

    def test_serial_fallback_routes_tenants(self, tenants_dir, pairs):
        bundle = ModelBundle.from_model(fresh_model(), threshold=0.5)
        with force_serial():
            pool = ServingPool(bundle, PoolConfig(
                replicas=2, tenants_dir=str(tenants_dir)))
            self._check_pool(pool, tenants_dir, pairs)
            assert pool.serial  # set at start, inside force_serial()

    @needs_fork
    def test_forked_replicas_route_tenants(self, tenants_dir, pairs):
        bundle = ModelBundle.from_model(fresh_model(), threshold=0.5)
        pool = ServingPool(bundle, PoolConfig(
            replicas=2, tenants_dir=str(tenants_dir)))
        self._check_pool(pool, tenants_dir, pairs)
