"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "REL-HETER"
        assert args.method == "PromptEM"
        assert args.rate is None

    def test_export_args(self):
        args = build_parser().parse_args(["export", "REL-HETER", "out.json"])
        assert args.dataset == "REL-HETER" and args.output == "out.json"


class TestCommands:
    def test_datasets_lists_all_eight(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("REL-HETER", "SEMI-HOMO", "GEO-HETER"):
            assert name in out

    def test_export_bundle(self, tmp_path, capsys):
        out = tmp_path / "d.json"
        assert main(["export", "REL-HETER", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["name"] == "REL-HETER"

    def test_export_machamp(self, tmp_path):
        out = tmp_path / "mc"
        assert main(["export", "REL-HETER", str(out), "--machamp"]) == 0
        assert (out / "left.json").exists()
        assert (out / "train.csv").exists()

    def test_run_tdmatch_on_exported_file(self, tmp_path, capsys):
        """End-to-end: export a dataset, run a label-free matcher on it."""
        bundle = tmp_path / "d.json"
        main(["export", "REL-HETER", str(bundle)])
        code = main(["run", "--from-file", str(bundle), "--method", "TDmatch",
                     "--rate", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TDmatch on REL-HETER" in out
        assert "F1=" in out

    def test_run_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "GPT-9"])
