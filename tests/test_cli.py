"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "REL-HETER"
        assert args.method == "PromptEM"
        assert args.rate is None

    def test_export_args(self):
        args = build_parser().parse_args(["export", "REL-HETER", "out.json"])
        assert args.dataset == "REL-HETER" and args.output == "out.json"


class TestCommands:
    def test_datasets_lists_all_eight(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("REL-HETER", "SEMI-HOMO", "GEO-HETER"):
            assert name in out

    def test_export_bundle(self, tmp_path, capsys):
        out = tmp_path / "d.json"
        assert main(["export", "REL-HETER", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["name"] == "REL-HETER"

    def test_export_machamp(self, tmp_path):
        out = tmp_path / "mc"
        assert main(["export", "REL-HETER", str(out), "--machamp"]) == 0
        assert (out / "left.json").exists()
        assert (out / "train.csv").exists()

    def test_run_tdmatch_on_exported_file(self, tmp_path, capsys):
        """End-to-end: export a dataset, run a label-free matcher on it."""
        bundle = tmp_path / "d.json"
        main(["export", "REL-HETER", str(bundle)])
        code = main(["run", "--from-file", str(bundle), "--method", "TDmatch",
                     "--rate", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TDmatch on REL-HETER" in out
        assert "F1=" in out

    def test_run_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "GPT-9"])


class TestTelemetry:
    def test_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.telemetry is None and args.trace is False

    def test_run_writes_schema_valid_jsonl(self, tmp_path, capsys,
                                           monkeypatch):
        """End-to-end: a --telemetry run covers trainer steps, self-training
        rounds, engine cache stats and worker-pool task latencies, and every
        record passes schema validation."""
        from repro.cli import _make_matcher
        from repro.core import PromptEM, PromptEMConfig
        from repro.lm import load_pretrained
        from repro.obs import read_events

        lm, tok = load_pretrained("minilm-tiny")

        def tiny_matcher(method, model_name, workers=None):
            cfg = PromptEMConfig(model_name="minilm-tiny", teacher_epochs=2,
                                 student_epochs=2, mc_passes=2,
                                 unlabeled_cap=8, batch_size=8, max_len=64,
                                 workers=workers)
            return PromptEM(cfg, lm=lm, tokenizer=tok)

        monkeypatch.setattr("repro.cli._make_matcher", tiny_matcher)
        path = tmp_path / "run.jsonl"
        code = main(["run", "--dataset", "REL-HETER", "--workers", "2",
                     "--telemetry", str(path), "--trace"])
        assert code == 0

        events = read_events(path, validate=True)  # every record validates
        kinds = {e["kind"] for e in events}
        assert {"run.start", "run.summary", "trainer.fit.start",
                "trainer.step", "trainer.epoch", "selftrain.round",
                "engine.stats", "pool.map", "span",
                "metrics.snapshot"} <= kinds
        summary = [e for e in events if e["kind"] == "run.summary"][-1]
        assert summary["f1"] >= 0
        pool_events = [e for e in events if e["kind"] == "pool.map"]
        assert all(e["per_worker"] for e in pool_events)
        out = capsys.readouterr().out
        assert "Per-phase time breakdown" in out  # --trace summary printed

    def test_trace_without_telemetry_prints_breakdown(self, tmp_path,
                                                      capsys, monkeypatch):
        from repro.baselines import TDmatch, TDmatchConfig

        monkeypatch.setattr(
            "repro.cli._make_matcher",
            lambda *a, **k: TDmatch(TDmatchConfig(num_walks=2, walk_length=5,
                                                  dimensions=8)))
        code = main(["run", "--dataset", "REL-HETER", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-phase time breakdown" in out
