"""Cross-module integration tests (tiny backbone, tiny budgets).

These cover the seams the unit tests cannot: serialization -> template ->
LM -> verbalizer -> trainer -> self-training, the blocking+matching
workflow, and the public package surface.
"""

import numpy as np
import pytest

import repro
from repro import PromptEM, PromptEMConfig, load_dataset
from repro.baselines import TDmatch, TDmatchConfig, make_baseline
from repro.data import OverlapBlocker, CandidatePair
from repro.lm import load_pretrained


@pytest.fixture(scope="module")
def backbone():
    return load_pretrained("minilm-tiny")


def tiny_config(**overrides):
    defaults = dict(model_name="minilm-tiny", teacher_epochs=3,
                    student_epochs=3, mc_passes=2, unlabeled_cap=16,
                    batch_size=8, max_len=64, prune_frequency=2)
    defaults.update(overrides)
    return PromptEMConfig(**defaults)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


class TestEndToEnd:
    @pytest.mark.parametrize("dataset_name", ["REL-HETER", "SEMI-TEXT-w"])
    def test_promptem_beats_random_on_two_formats(self, dataset_name, backbone):
        """The pipeline must produce genuinely better-than-chance matching
        on both a relational and a cross-format dataset."""
        lm, tok = backbone
        dataset = load_dataset(dataset_name)
        view = dataset.low_resource(seed=0)
        matcher = PromptEM(tiny_config(teacher_epochs=6, student_epochs=6),
                           lm=lm, tokenizer=tok).fit(view)
        prf = matcher.evaluate(view.test)
        positive_rate = 100 * dataset.positive_rate("test")
        # All-positive prediction would score ~2p/(1+p); demand better.
        all_positive_f1 = 2 * positive_rate / (100 + positive_rate)
        assert prf.f1 > all_positive_f1

    def test_self_training_report_consistency(self, backbone):
        lm, tok = backbone
        view = load_dataset("REL-HETER").low_resource(seed=1)
        matcher = PromptEM(tiny_config(), lm=lm, tokenizer=tok).fit(view)
        report = matcher.report
        pool = min(16, len(view.unlabeled))
        expected = max(1, int(round(pool * 0.10)))
        assert report.pseudo_labels_added[0] == expected

    def test_blocking_feeds_matching(self, backbone):
        """Classic workflow: block left x right, then match survivors."""
        lm, tok = backbone
        dataset = load_dataset("REL-HETER")
        result = OverlapBlocker(threshold=0.2).block(
            dataset.left_table, dataset.right_table)
        assert result.candidates
        view = dataset.low_resource(seed=0)
        matcher = PromptEM(tiny_config(use_self_training=False),
                           lm=lm, tokenizer=tok).fit(view)
        pairs = [CandidatePair(l, r) for l, r in result.candidates[:10]]
        preds = matcher.predict(pairs)
        assert preds.shape == (10,)

    def test_ablation_trio_runs(self, backbone):
        lm, tok = backbone
        view = load_dataset("REL-HETER").low_resource(seed=0)
        base = tiny_config()
        for cfg in (base.without_prompt_tuning(),
                    base.without_self_training(),
                    base.without_pruning()):
            matcher = PromptEM(cfg, lm=lm, tokenizer=tok).fit(view)
            assert matcher.predict(view.test[:4]).shape == (4,)


class TestBaselineProtocolParity:
    """Every baseline honours the same fit/predict/evaluate protocol."""

    def test_unsupervised_baseline_ignores_labels(self):
        view = load_dataset("REL-HETER").low_resource(seed=0)
        config = TDmatchConfig(num_walks=4, walk_length=8, dimensions=16)
        td = TDmatch(config).fit(view)
        prf = td.evaluate(view.test)
        assert 0 <= prf.f1 <= 100

    def test_factory_protocol(self, backbone):
        lm, tok = backbone
        view = load_dataset("REL-HETER").low_resource(seed=0)
        matcher = make_baseline("BERT", epochs=2, batch_size=8,
                                max_len=64, lm=lm, tokenizer=tok)
        matcher.fit(view)
        prf = matcher.evaluate(view.test[:12])
        assert 0 <= prf.f1 <= 100
