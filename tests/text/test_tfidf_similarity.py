"""Tests for TF-IDF summarization, similarity measures, and the corpus."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import (
    TfIdfModel, TfIdfSummarizer, build_corpus, cosine_tokens, jaccard,
    jaccard_text, levenshtein, levenshtein_similarity, overlap_coefficient,
    summarize_texts,
)
from repro.text.lexicon import STOPWORDS, all_domain_words


class TestTfIdf:
    def test_idf_ranks_rare_above_common(self):
        model = TfIdfModel().fit(["cat dog", "cat bird", "cat fish"])
        assert model.idf("fish") > model.idf("cat")

    def test_scores_empty_doc(self):
        model = TfIdfModel().fit(["a b"])
        assert model.scores("") == {}

    def test_summarizer_keeps_short_text(self):
        s = TfIdfSummarizer(max_tokens=10).fit(["alpha beta gamma"])
        assert s.summarize("alpha beta") == "alpha beta"

    def test_summarizer_truncates_and_keeps_order(self):
        docs = ["common word here"] * 5 + ["rare signal token appears once"]
        s = TfIdfSummarizer(max_tokens=3).fit(docs)
        out = s.summarize("common rare signal token")
        kept = out.split()
        assert len(kept) == 3
        # Rare high-idf words outrank the corpus-frequent one at equal tf.
        assert kept == ["rare", "signal", "token"]

    def test_summarizer_drops_stopwords(self):
        s = TfIdfSummarizer(max_tokens=50).fit(["x"])
        out = s.summarize("the cat and the hat")
        assert "the" not in out.split()
        assert "cat" in out.split()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            TfIdfSummarizer(max_tokens=0)

    def test_summarize_texts_helper(self):
        outs = summarize_texts(["one two three", "four five"], max_tokens=2)
        assert len(outs) == 2
        assert all(len(o.split()) <= 2 for o in outs)

    @given(st.text(alphabet="abcdef ", max_size=100), st.integers(1, 8))
    def test_property_summary_never_longer_than_budget(self, text, budget):
        s = TfIdfSummarizer(max_tokens=budget).fit([text or "x"])
        assert len(s.summarize(text).split()) <= max(
            budget, 0
        ) or len(text.split()) <= budget


class TestSimilarity:
    def test_jaccard_identical(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_jaccard_text(self):
        assert jaccard_text("golden dragon", "dragon golden") == 1.0

    def test_overlap_coefficient_subset_is_one(self):
        assert overlap_coefficient(["a", "b"], ["a", "b", "c", "d"]) == 1.0

    def test_cosine_identical(self):
        assert cosine_tokens(["a", "a", "b"], ["a", "a", "b"]) == pytest.approx(1.0)

    def test_cosine_empty(self):
        assert cosine_tokens([], ["a"]) == 0.0

    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("abc", "abc", 0), ("abc", "abd", 1),
         ("abc", "", 3), ("kitten", "sitting", 3), ("flaw", "lawn", 2)],
    )
    def test_levenshtein_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_levenshtein_similarity_bounds(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_property_levenshtein_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    def test_property_levenshtein_triangle(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.lists(st.sampled_from("abcde"), max_size=8),
           st.lists(st.sampled_from("abcde"), max_size=8))
    def test_property_jaccard_in_unit_interval(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0


class TestCorpus:
    def test_deterministic(self):
        assert build_corpus(50, seed=1) == build_corpus(50, seed=1)

    def test_different_seeds_differ(self):
        assert build_corpus(50, seed=1) != build_corpus(50, seed=2)

    def test_size(self):
        assert len(build_corpus(123, seed=0)) == 123

    def test_contains_label_words(self):
        text = " ".join(build_corpus(500, seed=0))
        for word in ("similar", "different", "matched", "mismatched"):
            assert word in text

    def test_contains_serialized_records(self):
        text = " ".join(build_corpus(500, seed=0))
        assert "[COL]" in text and "[VAL]" in text

    def test_vocabulary_overlap_with_domains(self):
        corpus_words = set(" ".join(build_corpus(2000, seed=0)).split())
        domain_words = set(all_domain_words())
        # The corpus should cover the bulk of the generator vocabulary.
        coverage = len(corpus_words & domain_words) / len(domain_words)
        assert coverage > 0.8

    def test_stopwords_are_words(self):
        assert all(w.isalpha() for w in STOPWORDS)
