"""Tests for vocabulary and tokenizer, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    SPECIAL_TOKENS, Tokenizer, Vocabulary, basic_tokenize, build_vocab, wordpiece,
)


class TestVocabulary:
    def test_specials_occupy_fixed_ids(self):
        vocab = Vocabulary()
        for i, token in enumerate(SPECIAL_TOKENS):
            assert vocab.id_of(token) == i
            assert vocab.token_of(i) == token

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        a = vocab.add("hello")
        b = vocab.add("hello")
        assert a == b
        assert len(vocab) == len(SPECIAL_TOKENS) + 1

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.id_of("nonexistent") == vocab.unk_id

    def test_rejects_empty_token(self):
        with pytest.raises(ValueError):
            Vocabulary().add("")

    def test_token_of_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary().token_of(10_000)

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["alpha", "beta"])
        ids = vocab.encode(["alpha", "beta", "[CLS]"])
        assert vocab.decode(ids) == ["alpha", "beta", "[CLS]"]

    @given(st.lists(st.text(alphabet="abcdefg", min_size=1, max_size=8), max_size=30))
    def test_property_ids_unique_and_dense(self, tokens):
        vocab = Vocabulary(tokens)
        all_ids = [vocab.id_of(t) for t in vocab.tokens()]
        assert sorted(all_ids) == list(range(len(vocab)))


class TestBasicTokenize:
    def test_lowercases_and_splits(self):
        assert basic_tokenize("Hello World") == ["hello", "world"]

    def test_preserves_special_tags(self):
        tokens = basic_tokenize("[COL] title [VAL] SQL Guide")
        assert tokens == ["[COL]", "title", "[VAL]", "sql", "guide"]

    def test_digits_split_individually(self):
        assert basic_tokenize("year 2003") == ["year", "2", "0", "0", "3"]

    def test_punctuation_isolated(self):
        assert basic_tokenize("a,b") == ["a", ",", "b"]

    def test_empty_string(self):
        assert basic_tokenize("") == []


class TestWordpiece:
    def test_whole_word_in_vocab(self):
        vocab = Vocabulary(["hello"])
        assert wordpiece("hello", vocab) == ["hello"]

    def test_splits_with_continuations(self):
        vocab = Vocabulary(["hel", "##lo"])
        assert wordpiece("hello", vocab) == ["hel", "##lo"]

    def test_unsplittable_returns_unk(self):
        vocab = Vocabulary()
        assert wordpiece("hello", vocab) == ["[UNK]"]

    def test_too_long_word(self):
        vocab = Vocabulary(list("abcdefghijklmnopqrstuvwxyz"))
        assert wordpiece("a" * 100, vocab) == ["[UNK]"]


class TestTokenizer:
    @pytest.fixture(scope="class")
    def tok(self):
        vocab = build_vocab(["golden dragon chinese restaurant main street"], max_words=100)
        return Tokenizer(vocab)

    def test_known_words_stay_whole(self, tok):
        assert tok.tokenize("golden dragon") == ["golden", "dragon"]

    def test_unknown_word_spelled_out(self, tok):
        pieces = tok.tokenize("zyx")
        assert all(p in tok.vocab for p in pieces)
        joined = "".join(p.removeprefix("##") for p in pieces)
        assert joined == "zyx"

    def test_encode_wraps_with_specials(self, tok):
        enc = tok.encode("golden dragon")
        assert enc.tokens[0] == "[CLS]" and enc.tokens[-1] == "[SEP]"

    def test_encode_respects_max_len(self, tok):
        enc = tok.encode("golden dragon chinese restaurant", max_len=5)
        assert len(enc) == 5

    def test_encode_pair_structure(self, tok):
        enc = tok.encode_pair("golden dragon", "main street", max_len=32)
        assert enc.tokens[0] == "[CLS]"
        assert enc.tokens.count("[SEP]") == 2
        assert enc.tokens[-1] == "[SEP]"

    def test_encode_pair_truncates_longest_first(self, tok):
        long = "golden dragon chinese restaurant " * 5
        enc = tok.encode_pair(long, "main street", max_len=16)
        assert len(enc) == 16
        # Shorter side survives truncation.
        assert "main" in enc.tokens and "street" in enc.tokens

    def test_encode_pair_tiny_max_len_rejected(self, tok):
        with pytest.raises(ValueError):
            tok.encode_pair("a", "b", max_len=2)

    @settings(max_examples=50)
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz 0123456789", max_size=60))
    def test_property_all_ids_in_range(self, text):
        vocab = build_vocab(["seed corpus words"], max_words=50)
        tok = Tokenizer(vocab)
        enc = tok.encode(text, max_len=64)
        assert all(0 <= i < len(vocab) for i in enc.ids)

    @settings(max_examples=50)
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    def test_property_alpha_words_never_unk(self, word):
        vocab = build_vocab([""], max_words=10)
        tok = Tokenizer(vocab)
        pieces = tok.tokenize(word)
        assert "[UNK]" not in pieces
        assert "".join(p.removeprefix("##") for p in pieces) == word


class TestBuildVocab:
    def test_contains_frequent_words(self):
        vocab = build_vocab(["apple banana apple", "apple pear"], max_words=500)
        assert "apple" in vocab and "banana" in vocab

    def test_max_words_cap(self):
        words = [a + b for a in "abcdefghij" for b in "klmnopqrst"]
        texts = [f"{w} {w}" for w in words]
        small = build_vocab(texts, max_words=10)
        large = build_vocab(texts, max_words=100)
        assert len(small) < len(large)

    def test_char_fallback_always_present(self):
        vocab = build_vocab([""], max_words=0)
        for ch in "az09":
            assert ch in vocab
            assert "##" + ch in vocab
